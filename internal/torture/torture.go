// Package torture is the deterministic crash & fault-injection harness
// for the recovery path. One Run is one simulated machine life: a
// seeded multi-worker workload commits against an engine whose log
// devices share a single faultfs.Plan (torn writes, dropped fsyncs,
// transient I/O errors, a crash point), the machine dies, and the
// harness re-opens a fresh engine from the devices' durable byte
// images and audits every recovery invariant:
//
//   - every acked commit is durable (device lies and lazy policies are
//     classified as at-risk, not violations — see verify.go);
//   - no rolled-back or unknown transaction appears in the log;
//   - recovered batches match the workload journal byte-for-byte;
//   - the WAL's DurableWatermark never exceeds what the devices hold;
//   - recovery's final state equals an independent spec-level replay,
//     including checkpoint choice and checkpoint+Truncate interplay;
//   - B+-tree and secondary indexes agree with the heap pages
//     (engine/storage/buffer/wal CheckInvariants).
//
// Everything a round does is derived from one int64 seed, so a failing
// seed is a complete reproducer.
package torture

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"vats/internal/disk"
	"vats/internal/engine"
	"vats/internal/faultfs"
	"vats/internal/storage"
	"vats/internal/wal"
	"vats/internal/xrand"
)

// Config is one torture round, fully derived from Seed by FromSeed.
type Config struct {
	Seed          int64
	Workers       int
	TxnsPerWorker int
	Keys          uint64
	Parallel      bool // two log streams instead of one
	Policy        wal.FlushPolicy
	Checkpoints   bool // checkpoints during the run

	// ConcurrentCkpt runs a background checkpointer racing the workers
	// (the online fuzzy checkpoint path) instead of quiescent
	// checkpoints between phases; Incremental makes every other one an
	// incremental checkpoint. Both only matter when Checkpoints is set.
	ConcurrentCkpt bool
	Incremental    bool

	// Backend selects the log-device implementation: "" or "sim" for
	// the simulated-latency device, "file" for real files under Dir (a
	// fresh temp directory when Dir is empty). The fault plan drives
	// both identically, so a seed replays on either backend.
	Backend string
	Dir     string

	// Fault plan knobs (see faultfs.Config). CrashOp <= 0 means the
	// round runs to completion and shuts down cleanly.
	CrashOp    int64
	CrashTorn  float64
	DropFsyncP float64
	IOErrorP   float64
}

// FromSeed derives a round configuration from a seed: worker count,
// durability policy, stream count, checkpointing, fault rates and the
// crash point are all sampled deterministically, so the seed alone
// reproduces the round.
func FromSeed(seed int64) Config {
	r := xrand.New(faultfs.DeriveSeed(seed, 0))
	cfg := Config{
		Seed:          seed,
		Workers:       3 + r.Intn(3),
		TxnsPerWorker: 20 + r.Intn(25),
		Keys:          192,
		Parallel:      r.Intn(2) == 1,
		Policy:        wal.FlushPolicy(r.Intn(3)),
		Checkpoints:   r.Intn(2) == 1,
		CrashTorn:     -1, // seeded torn fraction
	}
	if r.Intn(8) != 0 {
		// Most rounds crash mid-run; the rest shut down cleanly and
		// assert full durability. Log-uniform crash points: lazy
		// policies batch heavily and consume few device ops, eager
		// group commit consumes hundreds — both scales must be hit.
		cfg.CrashOp = int64(1 + r.Intn(1<<uint(1+r.Intn(8))))
	}
	if r.Intn(2) == 1 {
		cfg.DropFsyncP = 0.25 * r.Float64()
	}
	if r.Intn(2) == 1 {
		cfg.IOErrorP = 0.2 * r.Float64()
	}
	// Sampled last so the additions leave every older field's value for
	// a given seed unchanged.
	if cfg.Checkpoints {
		cfg.ConcurrentCkpt = r.Intn(2) == 1
		cfg.Incremental = r.Intn(2) == 1
	}
	return cfg
}

// Result is one round's outcome.
type Result struct {
	Cfg        Config
	Acked      int // commits the engine acknowledged
	Rolled     int // transactions rolled back (voluntarily or as victims)
	Unfinished int // commits in flight when the machine died
	Crashed    bool
	Ops        int64  // device operations the fault plan adjudicated
	Lies       int    // fsyncs the devices silently dropped
	Entries    int    // records recovered from the durable images
	Digest     uint64 // fault-schedule digest (seed-pure; see faultfs)
	Violations []string
}

// ReproCmd returns the exact command that replays this round.
func (r *Result) ReproCmd() string {
	b := ""
	if r.Cfg.Backend == "file" {
		b = " -backend file"
	}
	return fmt.Sprintf("go run ./cmd/torture -seed %d -crashes 1%s", r.Cfg.Seed, b)
}

// journalOp is one successfully executed statement of a transaction,
// in execution order — the ground truth the recovered log is compared
// against.
type journalOp struct {
	op    byte
	space uint32
	key   uint64
	row   []byte
}

// txnRec is the harness's record of one transaction.
type txnRec struct {
	ops       []journalOp
	committed bool // Commit was called
	acked     bool // Commit returned nil
}

type journal struct {
	mu    sync.Mutex
	txns  map[uint64]*txnRec
	ckpts map[uint64]bool // checkpoint ids (attempted, even if they crashed)
}

func (j *journal) record(id uint64, rec *txnRec, committed, acked bool) {
	rec.committed, rec.acked = committed, acked
	j.mu.Lock()
	j.txns[id] = rec
	j.mu.Unlock()
}

func (j *journal) recordCkpt(id uint64) {
	j.mu.Lock()
	j.ckpts[id] = true
	j.mu.Unlock()
}

// openTables creates the harness schema: table "a" with a secondary
// index over the row's value field, and plain table "b". Recovery
// re-creates the same schema before replay.
func openTables(db *engine.DB) []*storage.Table {
	a, err := db.CreateTable("a")
	if err != nil {
		panic(err)
	}
	if err := a.CreateIndex(db.Pool().NewHandle(), "byval", rowIndexKey); err != nil {
		panic(err)
	}
	b, err := db.CreateTable("b")
	if err != nil {
		panic(err)
	}
	return []*storage.Table{a, b}
}

// Run executes one torture round and returns its audited result.
func Run(cfg Config) *Result {
	plan := faultfs.NewPlan(cfg.Seed, faultfs.Config{
		IOErrorP:   cfg.IOErrorP,
		DropFsyncP: cfg.DropFsyncP,
		CrashOp:    cfg.CrashOp,
		CrashTorn:  cfg.CrashTorn,
	})
	nDev := 1
	if cfg.Parallel {
		nDev = 2
	}
	devs := make([]disk.Device, nDev)
	var tmpDir string
	if cfg.Backend == "file" {
		dir := cfg.Dir
		if dir == "" {
			var err error
			dir, err = os.MkdirTemp("", "vats-torture-")
			if err != nil {
				panic(err)
			}
			tmpDir = dir
		}
		for i := range devs {
			fd, err := disk.OpenFile(disk.FileConfig{
				Path:          filepath.Join(dir, fmt.Sprintf("log%d.wal", i)),
				Name:          fmt.Sprintf("log%d", i),
				PreallocBytes: 1 << 20,
				BlockSize:     4096,
				Faults:        plan, // one machine, one plan: all devices die together
			})
			if err != nil {
				panic(err)
			}
			devs[i] = fd
		}
	} else {
		for i := range devs {
			devs[i] = disk.New(disk.Config{
				Name:          fmt.Sprintf("log%d", i),
				MedianLatency: 5 * time.Microsecond,
				BlockSize:     4096,
				Seed:          cfg.Seed + int64(i),
				Faults:        plan, // one machine, one plan: all devices die together
			})
		}
	}
	db := engine.Open(engine.Config{
		DataDevice:       disk.New(disk.Config{MedianLatency: 5 * time.Microsecond, BlockSize: 4096, Seed: cfg.Seed + 100}),
		LogDevices:       devs,
		ParallelLog:      cfg.Parallel,
		FlushPolicy:      cfg.Policy,
		LogFlushInterval: time.Millisecond,
		LockTimeout:      250 * time.Millisecond,
		DeadlockInterval: time.Millisecond,
		BufferCapacity:   64, // small on purpose: evictions and write-backs churn
		PageSize:         1024,
	})
	tabs := openTables(db)
	j := &journal{txns: make(map[uint64]*txnRec), ckpts: make(map[uint64]bool)}

	phases := 1
	if cfg.Checkpoints {
		phases = 4
	}
	perPhase := (cfg.TxnsPerWorker + phases - 1) / phases

	// Online checkpointing: a background checkpointer races the workers
	// for the whole run, exercising the fuzzy-snapshot path (begin
	// marker, concurrent commits straddling the snapshot, crashes
	// between begin and end markers).
	stopCkpt := make(chan struct{})
	var ckptWG sync.WaitGroup
	if cfg.Checkpoints && cfg.ConcurrentCkpt {
		ckptWG.Add(1)
		go func() {
			defer ckptWG.Done()
			r := xrand.New(faultfs.DeriveSeed(cfg.Seed, 999))
			for i := 0; ; i++ {
				select {
				case <-stopCkpt:
					return
				case <-time.After(time.Duration(100+r.Intn(900)) * time.Microsecond):
				}
				var id uint64
				var err error
				if cfg.Incremental && i%2 == 1 {
					id, err = db.CheckpointIncremental()
				} else {
					id, err = db.Checkpoint()
				}
				if id != 0 {
					j.recordCkpt(id)
				}
				if err != nil {
					return // crash point hit, or the engine died
				}
			}
		}()
	}

	for ph := 0; ph < phases; ph++ {
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w, ph int) {
				defer wg.Done()
				runWorker(db, tabs, j, cfg, w, ph, perPhase)
			}(w, ph)
		}
		wg.Wait()
		if plan.Crashed() {
			break
		}
		if cfg.Checkpoints && !cfg.ConcurrentCkpt && ph < phases-1 {
			// Quiescent by construction: every worker has joined.
			id, err := db.Checkpoint()
			if id != 0 {
				j.recordCkpt(id)
			}
			if err != nil {
				break // the checkpoint hit the crash point (or the engine died)
			}
		}
	}
	close(stopCkpt)
	ckptWG.Wait()

	res := &Result{Cfg: cfg, Digest: plan.ScheduleDigest(1024)}
	if plan.Crashed() {
		db.Crash()
	} else {
		db.Close() // clean shutdown: final flush, then full durability is owed
	}
	// Re-read after shutdown: the final close-flush itself can hit the
	// crash point, and that round must be judged as a crash, not as a
	// clean shutdown owing full durability.
	res.Crashed = plan.Crashed()
	res.Ops = plan.Ops()
	for _, rec := range j.txns {
		switch {
		case rec.acked:
			res.Acked++
		case rec.committed:
			res.Unfinished++
		default:
			res.Rolled++
		}
	}
	for _, d := range devs {
		res.Lies += d.Lies()
	}
	verify(res, db, devs, j)
	// File devices pread their durable images out of the open files, so
	// they close only after the audit; their scratch dir dies with them.
	for _, d := range devs {
		_ = d.Close()
	}
	if tmpDir != "" {
		_ = os.RemoveAll(tmpDir)
	}
	return res
}

// runWorker executes one worker's share of a phase.
func runWorker(db *engine.DB, tabs []*storage.Table, j *journal, cfg Config, w, phase, n int) {
	r := xrand.New(faultfs.DeriveSeed(cfg.Seed, 1000*w+phase+1))
	s := db.NewSession()
	for i := 0; i < n; i++ {
		if stop := runTxnOnce(s, tabs, j, cfg, r); stop {
			return
		}
	}
}

// runTxnOnce runs one transaction: 1-4 random statements, then a
// voluntary rollback (10%) or a commit. Returns true when the worker
// should stop (machine crashed or engine closed).
func runTxnOnce(s *engine.Session, tabs []*storage.Table, j *journal, cfg Config, r *xrand.Source) bool {
	tx := s.Begin()
	rec := &txnRec{}
	abort := func(stop bool) bool {
		tx.Rollback()
		j.record(tx.ID(), rec, false, false)
		return stop
	}
	nops := 1 + r.Intn(4)
	for k := 0; k < nops; k++ {
		t := tabs[r.Intn(len(tabs))]
		key := uint64(1 + r.Intn(int(cfg.Keys)))
		var err error
		var op journalOp
		switch c := r.Intn(10); {
		case c < 4:
			row := makeRow(r)
			err = tx.Insert(t, key, row)
			op = journalOp{op: engine.RedoInsert, space: t.Space(), key: key, row: row}
		case c < 7:
			row := makeRow(r)
			err = tx.Update(t, key, row)
			op = journalOp{op: engine.RedoUpdate, space: t.Space(), key: key, row: row}
		case c < 9:
			err = tx.Delete(t, key)
			op = journalOp{op: engine.RedoDelete, space: t.Space(), key: key}
		default:
			_, err = tx.Get(t, key)
		}
		switch {
		case err == nil:
			if op.op != 0 {
				rec.ops = append(rec.ops, op)
			}
		case errors.Is(err, storage.ErrDuplicateKey), errors.Is(err, storage.ErrKeyNotFound):
			// Expected under random keys; the statement had no effect.
		case engine.IsRetryable(err):
			return abort(false) // deadlock victim / lock timeout
		default:
			return abort(true) // engine closed or crashed mid-statement
		}
	}
	if r.Intn(10) == 0 {
		return abort(false) // voluntary rollback
	}
	err := tx.Commit()
	switch {
	case err == nil:
		j.record(tx.ID(), rec, true, true)
		return false
	case errors.Is(err, wal.ErrCrashed), errors.Is(err, faultfs.ErrCrashed):
		j.record(tx.ID(), rec, true, false)
		return true
	default:
		// Commit failed without a crash (e.g. write-retry exhaustion
		// under an extreme error rate): attempted but unacknowledged.
		j.record(tx.ID(), rec, true, false)
		return false
	}
}

// makeRow builds a row image: an 8-byte value (the secondary-index
// key source) plus variable filler.
func makeRow(r *xrand.Source) []byte {
	var b storage.RowBuilder
	v := uint64(r.Int63())
	fill := r.Intn(60)
	row := b.Uint64(v).Bytes()
	for len(row) < 8+fill {
		row = append(row, byte('a'+fill%26))
	}
	return row
}

// rowIndexKey is the secondary-index key function for table "a".
func rowIndexKey(_ uint64, row []byte) (uint64, bool) {
	if len(row) < 10 {
		return 0, false
	}
	rd := storage.NewRowReader(row)
	v := rd.Uint64()
	if !rd.Ok() {
		return 0, false
	}
	return v % 97, true
}
