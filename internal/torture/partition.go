package torture

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"vats/internal/disk"
	"vats/internal/engine"
	"vats/internal/faultfs"
	"vats/internal/partition"
	"vats/internal/storage"
	"vats/internal/wal"
	"vats/internal/xrand"
)

// The partitioned campaign tortures the cross-partition commit path:
// one simulated machine runs an N-way partitioned engine whose log
// devices all share a single fault plan (they die together), workers
// mix single-partition and two-partition transfer transactions, the
// machine crashes at a seeded device-op — including inside the 2PC
// prepare and decide windows — and recovery is audited for the
// all-or-nothing invariant: a cross-partition transaction's effects are
// either visible on every participant or on none.
//
// Each transaction transfers an amount between two balance rows and
// inserts one unique receipt row per participant. Receipts make the
// atomicity audit exact under overwrites (a receipt key is written by
// exactly one transaction, so presence is per-transaction evidence),
// and zero-sum transfers make partial application visible in the global
// balance sum even when receipts survive.

// PartConfig is one partitioned torture round, derived from Seed by
// PartFromSeed.
type PartConfig struct {
	Seed          int64
	Partitions    int
	Workers       int
	TxnsPerWorker int
	Keys          uint64  // balance keys 1..Keys, hash-routed by identity
	MultiP        float64 // fraction of two-partition transactions
	Policy        wal.FlushPolicy

	// Fault plan knobs (see faultfs.Config). CrashOp <= 0 means the
	// round runs to completion and shuts down cleanly.
	CrashOp    int64
	CrashTorn  float64
	DropFsyncP float64
	IOErrorP   float64
}

// PartFromSeed derives a partitioned round configuration from a seed.
func PartFromSeed(seed int64) PartConfig {
	r := xrand.New(faultfs.DeriveSeed(seed, 7))
	cfg := PartConfig{
		Seed:          seed,
		Partitions:    2 + r.Intn(3),
		Workers:       2 + r.Intn(3),
		TxnsPerWorker: 15 + r.Intn(20),
		Keys:          96,
		MultiP:        0.2 + 0.5*r.Float64(),
		Policy:        wal.FlushPolicy(r.Intn(3)),
		CrashTorn:     -1, // seeded torn fraction
	}
	if r.Intn(8) != 0 {
		// Most rounds crash mid-run. The range is wider than the
		// single-engine campaign's because the seed load consumes the
		// first stretch of device ops; crash points beyond it land in
		// the workload — including between a participant's prepare and
		// the coordinator's decision record.
		cfg.CrashOp = int64(1 + r.Intn(1<<uint(2+r.Intn(9))))
	}
	if r.Intn(2) == 1 {
		cfg.DropFsyncP = 0.25 * r.Float64()
	}
	if r.Intn(2) == 1 {
		cfg.IOErrorP = 0.2 * r.Float64()
	}
	return cfg
}

// PartResult is one partitioned round's outcome.
type PartResult struct {
	Cfg      PartConfig
	Crashed  bool
	LoadDone bool // seed balances were durable before the workload ran
	Ops      int64
	Lies     int

	Acked   int // transactions whose Run call returned nil
	Aborted int // voluntary aborts and retry-exhausted victims
	Unknown int // in flight when the machine died
	Single  int // journaled single-partition transactions
	Multi   int // journaled two-partition transactions

	// Recovery-time 2PC census over the durable logs: Decided counts
	// gtids whose decision record survived (recovery commits them
	// everywhere), InDoubt counts prepares with no decision (recovery
	// aborts them everywhere) — the crash-in-prepare-window evidence.
	Decided int
	InDoubt int

	// AtRisk counts outcomes forgiven under the documented trades
	// (lazy-policy or lying-device commit loss), not violations.
	AtRisk int

	Violations []string
}

// ReproCmd returns the exact command that replays this round.
func (r *PartResult) ReproCmd() string {
	return fmt.Sprintf("go run ./cmd/torture -partitioned -seed %d -crashes 1", r.Cfg.Seed)
}

const partInitBalance = 1000

// partTxnRec journals one partitioned transaction: its balance keys,
// its per-participant receipt keys, and how the Run call ended.
type partTxnRec struct {
	serial int
	a, b   uint64 // balance keys (distinct)
	ra, rb uint64 // receipt keys on a's and b's partitions
	multi  bool
	acked  bool // Run returned nil
	abort  bool // voluntary abort or retry exhaustion: effects must be absent
}

type partJournal struct {
	mu   sync.Mutex
	recs []*partTxnRec
}

func (j *partJournal) add(rec *partTxnRec) {
	j.mu.Lock()
	j.recs = append(j.recs, rec)
	j.mu.Unlock()
}

// errVoluntary is the sentinel a workload closure returns to abort.
var errVoluntary = errors.New("torture: voluntary abort")

// RunPartitioned executes one partitioned torture round.
func RunPartitioned(cfg PartConfig) *PartResult {
	plan := faultfs.NewPlan(cfg.Seed, faultfs.Config{
		IOErrorP:   cfg.IOErrorP,
		DropFsyncP: cfg.DropFsyncP,
		CrashOp:    cfg.CrashOp,
		CrashTorn:  cfg.CrashTorn,
	})
	devsOf := make([][]disk.Device, cfg.Partitions)
	pdb, perr := partition.Open(partition.Options{
		Partitions: cfg.Partitions,
		Workers:    2,
		EngineFor: func(p int, _ engine.Config) engine.Config {
			dev := disk.New(disk.Config{
				Name:          fmt.Sprintf("p%dlog", p),
				MedianLatency: 5 * time.Microsecond,
				BlockSize:     4096,
				Seed:          cfg.Seed + int64(p),
				Faults:        plan, // one machine: every partition's log dies together
			})
			devsOf[p] = []disk.Device{dev}
			return engine.Config{
				DataDevice:       disk.New(disk.Config{MedianLatency: 5 * time.Microsecond, BlockSize: 4096, Seed: cfg.Seed + 100 + int64(p)}),
				LogDevices:       devsOf[p],
				FlushPolicy:      cfg.Policy,
				LogFlushInterval: time.Millisecond,
				LockTimeout:      250 * time.Millisecond,
				DeadlockInterval: time.Millisecond,
				BufferCapacity:   64,
				PageSize:         1024,
			}
		},
	})
	if perr != nil {
		panic(perr)
	}
	tab, err := pdb.CreateTable("t", func(pk uint64) uint64 { return pk })
	if err != nil {
		panic(err)
	}

	loadDone := loadPartBalances(pdb, tab, cfg)
	if loadDone {
		// Force the seed state durable at any policy, so state audits
		// have a known floor — and VERIFY from the device images rather
		// than trusting the flush: one Flush pass can lose its claim to
		// a transient I/O error or race a background pass whose fsync
		// is still in flight. A crash in here, a persistent error, or a
		// lying fsync demotes the round to log-level checks only.
		for i := 0; i < 50 && !plan.Crashed() && !seedDurable(devsOf, cfg); i++ {
			for p := 0; p < cfg.Partitions && !plan.Crashed(); p++ {
				pdb.Partition(p).Log().Flush()
			}
			time.Sleep(time.Millisecond)
		}
		loadDone = !plan.Crashed() && seedDurable(devsOf, cfg)
	}

	j := &partJournal{}
	if loadDone {
		var wg sync.WaitGroup
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				runPartWorker(pdb, tab, j, cfg, w)
			}(w)
		}
		wg.Wait()
	}

	res := &PartResult{Cfg: cfg, LoadDone: loadDone}
	if plan.Crashed() {
		pdb.Crash()
	} else {
		pdb.Close()
	}
	res.Crashed = plan.Crashed()
	res.Ops = plan.Ops()
	for _, devs := range devsOf {
		for _, d := range devs {
			res.Lies += d.Lies()
		}
	}
	for _, rec := range j.recs {
		switch {
		case rec.acked:
			res.Acked++
		case rec.abort:
			res.Aborted++
		default:
			res.Unknown++
		}
		if rec.multi {
			res.Multi++
		} else {
			res.Single++
		}
	}

	perPart := make([][]wal.Entry, cfg.Partitions)
	for p, devs := range devsOf {
		perPart[p] = wal.RecoverDeviceEntries(devs...)
	}
	verifyPartitioned(res, perPart, j)
	return res
}

// seedDurable checks the devices' durable images directly: every
// balance key's insert record must already be on disk.
func seedDurable(devsOf [][]disk.Device, cfg PartConfig) bool {
	want := int(cfg.Keys)
	got := 0
	for _, devs := range devsOf {
		for _, e := range wal.RecoverDeviceEntries(devs...) {
			op, _, key, _, err := engine.DecodeRedo(e.Payload)
			if err == nil && op == engine.RedoInsert && key >= 1 && key <= cfg.Keys {
				got++
			}
		}
	}
	return got == want
}

// loadPartBalances seeds every balance key with partInitBalance, routed
// to its partition. Returns false when the machine crashed mid-load.
func loadPartBalances(pdb *partition.DB, tab *partition.Table, cfg PartConfig) bool {
	n := cfg.Partitions
	for p := 0; p < n; p++ {
		var keys []uint64
		for k := uint64(1); k <= cfg.Keys; k++ {
			if int(k%uint64(n)) == p {
				keys = append(keys, k)
			}
		}
		err := pdb.RunOn(p, func(tx *engine.Txn) error {
			for _, k := range keys {
				var b storage.RowBuilder
				if err := tx.Insert(tab.Shard(p), k, b.Uint64(partInitBalance).Bytes()); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			return false
		}
	}
	return true
}

// runPartWorker executes one worker's transactions through the router.
func runPartWorker(pdb *partition.DB, tab *partition.Table, j *partJournal, cfg PartConfig, w int) {
	r := xrand.New(faultfs.DeriveSeed(cfg.Seed, 5000+w))
	n := uint64(cfg.Partitions)
	// Receipt keys live far above the balance range and are unique per
	// (worker, txn); the +residue term routes each to its partition.
	rbase := n << 32
	for i := 0; i < cfg.TxnsPerWorker; i++ {
		serial := w*1_000_000 + i
		multi := r.Float64() < cfg.MultiP && cfg.Partitions > 1
		a := uint64(1 + r.Intn(int(cfg.Keys)))
		b := a
		for b == a || (multi == (b%n == a%n)) {
			b = uint64(1 + r.Intn(int(cfg.Keys)))
		}
		rec := &partTxnRec{
			serial: serial,
			a:      a, b: b,
			ra:    rbase + uint64(2*serial)*n + a%n,
			rb:    rbase + uint64(2*serial+1)*n + b%n,
			multi: multi,
		}
		amount := uint64(1 + r.Intn(10))
		voluntary := r.Intn(10) == 0
		refs := []partition.Ref{{Table: tab, Key: a}, {Table: tab, Key: b}, {Table: tab, Key: rec.ra}, {Table: tab, Key: rec.rb}}
		err := pdb.Run("torture", refs, func(tx *partition.Txn) error {
			av, err := tx.GetForUpdate(tab, a)
			if err != nil {
				return err
			}
			abal := storage.NewRowReader(av).Uint64()
			bv, err := tx.GetForUpdate(tab, b)
			if err != nil {
				return err
			}
			bbal := storage.NewRowReader(bv).Uint64()
			var ra, rb2, rra, rrb storage.RowBuilder
			if err := tx.Update(tab, a, ra.Uint64(abal-amount).Bytes()); err != nil {
				return err
			}
			if err := tx.Update(tab, b, rb2.Uint64(bbal+amount).Bytes()); err != nil {
				return err
			}
			if err := tx.Insert(tab, rec.ra, rra.Uint64(uint64(serial)).Bytes()); err != nil {
				return err
			}
			if err := tx.Insert(tab, rec.rb, rrb.Uint64(uint64(serial)).Bytes()); err != nil {
				return err
			}
			if voluntary {
				return errVoluntary
			}
			return nil
		})
		switch {
		case err == nil:
			rec.acked = true
			j.add(rec)
		case errors.Is(err, errVoluntary):
			rec.abort = true
			j.add(rec)
		case engine.IsRetryable(err):
			// Retry exhaustion: the final attempt rolled back.
			rec.abort = true
			j.add(rec)
		default:
			// Machine crashed or engine closed mid-transaction: outcome
			// unknown (a post-decision commit error lands here too — the
			// transaction may in fact be committed). The audit only
			// requires all-or-nothing for these.
			j.add(rec)
			return
		}
	}
}

// verifyPartitioned audits a finished partitioned round: the 2PC record
// census over the durable logs, a full recovery into a fresh
// partitioned engine, and the atomicity/durability invariants.
func verifyPartitioned(res *PartResult, perPart [][]wal.Entry, j *partJournal) {
	bad := func(format string, args ...any) {
		res.Violations = append(res.Violations, fmt.Sprintf(format, args...))
	}
	cfg := res.Cfg
	n := cfg.Partitions

	// --- 2PC record census. ---
	prepared := make(map[uint64]map[int]bool)
	decided := make(map[uint64]bool)
	for p, entries := range perPart {
		for _, e := range entries {
			op, _, gtid, _, err := engine.DecodeRedo(e.Payload)
			if err != nil {
				continue // recovery itself will flag undecodable records
			}
			switch op {
			case engine.RedoPrepare:
				if prepared[gtid] == nil {
					prepared[gtid] = make(map[int]bool)
				}
				prepared[gtid][p] = true
			case engine.RedoDecide:
				decided[gtid] = true
			}
		}
	}
	for g := range prepared {
		if decided[g] {
			res.Decided++
		} else {
			res.InDoubt++
		}
	}
	// A decision is logged only after every participant's prepare was
	// forced durable, so a decision without any surviving prepare means
	// a device lied (forgiven) or the ordering broke (violation).
	for g := range decided {
		if len(prepared[g]) == 0 {
			if res.Lies > 0 {
				res.AtRisk++
			} else {
				bad("gtid %d: decision record with no surviving prepare", g)
			}
		}
	}

	// --- Recover into a fresh partitioned engine. ---
	pdb2, perr2 := partition.Open(partition.Options{
		Partitions: n,
		Workers:    1,
		EngineFor: func(p int, _ engine.Config) engine.Config {
			return engine.Config{
				DataDevice:       disk.New(disk.Config{MedianLatency: 5 * time.Microsecond, BlockSize: 4096, Seed: cfg.Seed + 200 + int64(p)}),
				LogDevices:       []disk.Device{disk.New(disk.Config{MedianLatency: 5 * time.Microsecond, BlockSize: 4096, Seed: cfg.Seed + 300 + int64(p)})},
				LockTimeout:      250 * time.Millisecond,
				DeadlockInterval: time.Millisecond,
				BufferCapacity:   64,
				PageSize:         1024,
			}
		},
	})
	if perr2 != nil {
		panic(perr2)
	}
	defer pdb2.Close()
	tab2, err := pdb2.CreateTable("t", func(pk uint64) uint64 { return pk })
	if err != nil {
		panic(err)
	}
	if err := pdb2.Recover(perPart); err != nil {
		bad("partitioned recovery failed: %v", err)
		return
	}
	state := make(map[uint64][]byte)
	for p := 0; p < n; p++ {
		if err := pdb2.Partition(p).CheckInvariants(); err != nil {
			bad("recovered partition %d invariants: %v", p, err)
		}
		h := pdb2.Partition(p).Pool().NewHandle()
		err := tab2.Shard(p).Scan(h, 0, ^uint64(0), func(key uint64, row []byte) bool {
			if int(key%uint64(n)) != p {
				bad("row %d recovered on partition %d, belongs on %d", key, p, key%uint64(n))
			}
			state[key] = append([]byte(nil), row...)
			return true
		})
		if err != nil {
			bad("scan of recovered partition %d: %v", p, err)
			return
		}
	}

	if !res.LoadDone {
		return // crashed mid-load: no state promises beyond the above
	}

	// --- Zero-sum invariant: partial cross-partition application would
	// unbalance the books. ---
	// Commit loss under a lazy policy shifts which transfers applied,
	// but never the total: per-device durable images are prefixes, so
	// every outcome recovery can produce is a set of whole transactions.
	// A lying fsync breaks that (it can drop one participant's prepare
	// after the decision committed the other), so the books are only
	// audited when no device lied.
	if res.Lies == 0 {
		var sum uint64
		for k := uint64(1); k <= cfg.Keys; k++ {
			row, ok := state[k]
			if !ok {
				bad("balance key %d missing after recovery", k)
				continue
			}
			sum += storage.NewRowReader(row).Uint64()
		}
		if want := cfg.Keys * partInitBalance; sum != want {
			bad("balance sum %d after recovery, want %d (partial transaction applied)", sum, want)
		}
	}

	// --- Per-transaction receipts: all-or-nothing on every partition. ---
	for _, rec := range j.recs {
		_, haveA := state[rec.ra]
		_, haveB := state[rec.rb]
		if haveA != haveB {
			if rec.multi && res.Lies > 0 {
				// A lying device can lose one participant's prepare after
				// the decision committed the other — the documented trade
				// of hardware that lies about fsync.
				res.AtRisk++
			} else {
				bad("txn %d: partial state after recovery (receipt A=%v B=%v, multi=%v)",
					rec.serial, haveA, haveB, rec.multi)
			}
			continue
		}
		if rec.abort && haveA {
			bad("aborted txn %d visible after recovery", rec.serial)
		}
		if rec.acked && !haveA {
			// Multi-partition commits are always owed: prepares and the
			// decision are forced durable regardless of policy. Single-
			// partition commits follow the engine's policy trade.
			owed := rec.multi || !res.Crashed || cfg.Policy == wal.EagerFlush
			if owed && res.Lies == 0 {
				bad("acked txn %d lost after recovery (multi=%v policy=%v crashed=%v)",
					rec.serial, rec.multi, cfg.Policy, res.Crashed)
			} else {
				res.AtRisk++
			}
		}
	}
}
