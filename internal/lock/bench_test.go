package lock

import (
	"testing"
	"time"
)

// BenchmarkLockAcquire measures the uncontended acquire/release pair —
// the fast path every row operation pays even when no conflict exists.
func BenchmarkLockAcquire(b *testing.B) {
	m := NewManager(Options{Scheduler: FCFS{}, DetectInterval: -1})
	defer m.Close()
	k := Key{1, 1}
	birth := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := m.Acquire(1, birth, k, Exclusive); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(1)
	}
}

// BenchmarkLockAcquireShared measures repeated shared acquisition across
// a working set of keys (read-mostly workload shape).
func BenchmarkLockAcquireShared(b *testing.B) {
	m := NewManager(Options{Scheduler: VATS{}, DetectInterval: -1})
	defer m.Close()
	birth := time.Now()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		owner := TxnID(i&7 + 1)
		for j := uint64(0); j < 4; j++ {
			if err := m.Acquire(owner, birth, Key{1, j}, Shared); err != nil {
				b.Fatal(err)
			}
		}
		m.ReleaseAll(owner)
	}
}
