package lock

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func newMgr(s Scheduler) *Manager {
	return NewManager(Options{Scheduler: s, DetectInterval: time.Millisecond})
}

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func birth(i int) time.Time { return t0.Add(time.Duration(i) * time.Second) }

func TestImmediateGrantOnFreeLock(t *testing.T) {
	m := newMgr(FCFS{})
	defer m.Close()
	k := Key{1, 1}
	if err := m.Acquire(1, birth(0), k, Exclusive); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	if mode, ok := m.Held(1, k); !ok || mode != Exclusive {
		t.Fatalf("held = %v,%v", mode, ok)
	}
	m.ReleaseAll(1)
	if _, ok := m.Held(1, k); ok {
		t.Fatal("still held after ReleaseAll")
	}
	if m.HolderCount(k) != 0 || m.QueueLen(k) != 0 {
		t.Fatal("lock state not cleaned up")
	}
}

func TestSharedLocksCoexist(t *testing.T) {
	m := newMgr(FCFS{})
	defer m.Close()
	k := Key{1, 2}
	for id := TxnID(1); id <= 3; id++ {
		if err := m.Acquire(id, birth(int(id)), k, Shared); err != nil {
			t.Fatalf("acquire %d: %v", id, err)
		}
	}
	if got := m.HolderCount(k); got != 3 {
		t.Fatalf("holders = %d, want 3", got)
	}
}

func TestExclusiveBlocksAndReleaseGrants(t *testing.T) {
	m := newMgr(FCFS{})
	defer m.Close()
	k := Key{1, 3}
	if err := m.Acquire(1, birth(1), k, Exclusive); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Acquire(2, birth(2), k, Exclusive) }()
	select {
	case err := <-got:
		t.Fatalf("second X acquired while first held: %v", err)
	case <-time.After(10 * time.Millisecond):
	}
	m.ReleaseAll(1)
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("grant after release: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("waiter never granted")
	}
}

func TestReentrancy(t *testing.T) {
	m := newMgr(FCFS{})
	defer m.Close()
	k := Key{1, 4}
	if err := m.Acquire(1, birth(1), k, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(1, birth(1), k, Shared); err != nil {
		t.Fatalf("re-acquire S: %v", err)
	}
	if err := m.Acquire(1, birth(1), k, Exclusive); err != nil {
		t.Fatalf("upgrade with no contention: %v", err)
	}
	if mode, _ := m.Held(1, k); mode != Exclusive {
		t.Fatalf("mode after upgrade = %v", mode)
	}
	if err := m.Acquire(1, birth(1), k, Shared); err != nil {
		t.Fatalf("S while holding X: %v", err)
	}
	if err := m.Acquire(1, birth(1), k, Exclusive); err != nil {
		t.Fatalf("re-acquire X: %v", err)
	}
	if got := m.HolderCount(k); got != 1 {
		t.Fatalf("holders = %d, want 1 (no duplicates)", got)
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	m := newMgr(FCFS{})
	defer m.Close()
	k := Key{1, 5}
	if err := m.Acquire(1, birth(1), k, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, birth(2), k, Shared); err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() { got <- m.Acquire(1, birth(1), k, Exclusive) }()
	select {
	case <-got:
		t.Fatal("upgrade granted while another reader holds")
	case <-time.After(10 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-got; err != nil {
		t.Fatalf("upgrade after reader left: %v", err)
	}
	if mode, _ := m.Held(1, k); mode != Exclusive {
		t.Fatalf("mode = %v, want X", mode)
	}
}

// grantOrder runs one holder plus n staged waiters and reports the order
// in which the waiters were granted.
func grantOrder(t *testing.T, m *Manager, k Key, births []time.Time) []TxnID {
	t.Helper()
	if err := m.Acquire(100, birth(0), k, Exclusive); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []TxnID
	var wg sync.WaitGroup
	for i, b := range births {
		wg.Add(1)
		id := TxnID(i + 1)
		bb := b
		go func() {
			defer wg.Done()
			if err := m.Acquire(id, bb, k, Exclusive); err != nil {
				t.Errorf("txn %d: %v", id, err)
				return
			}
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			time.Sleep(2 * time.Millisecond) // hold briefly to serialize grants
			m.ReleaseAll(id)
		}()
		time.Sleep(5 * time.Millisecond) // stage arrivals in index order
	}
	m.ReleaseAll(100)
	wg.Wait()
	return order
}

func TestFCFSGrantsInArrivalOrder(t *testing.T) {
	m := NewManager(Options{Scheduler: FCFS{}, DetectInterval: -1})
	defer m.Close()
	// Births deliberately reversed: FCFS must ignore age.
	order := grantOrder(t, m, Key{2, 1}, []time.Time{birth(3), birth(2), birth(1)})
	want := []TxnID{1, 2, 3}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("FCFS order = %v, want %v", order, want)
		}
	}
}

func TestVATSGrantsEldestFirst(t *testing.T) {
	m := NewManager(Options{Scheduler: VATS{}, DetectInterval: -1})
	defer m.Close()
	// Arrival order 1,2,3 but txn 3 is eldest and txn 1 youngest.
	order := grantOrder(t, m, Key{2, 2}, []time.Time{birth(3), birth(2), birth(1)})
	want := []TxnID{3, 2, 1}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("VATS order = %v, want %v", order, want)
		}
	}
}

func TestRSGrantsEveryone(t *testing.T) {
	m := NewManager(Options{Scheduler: RS{}, DetectInterval: -1})
	defer m.Close()
	order := grantOrder(t, m, Key{2, 3}, []time.Time{birth(1), birth(2), birth(3)})
	if len(order) != 3 {
		t.Fatalf("RS granted %d of 3", len(order))
	}
}

func TestStrictFCFSArrivalWaitsBehindQueue(t *testing.T) {
	// Holder has X; one S waiter queued; a second S arrival must NOT be
	// granted even though it is compatible with the (eventual) state —
	// strict FCFS grants arrivals only when the queue is empty.
	m := NewManager(Options{Scheduler: FCFS{}, DetectInterval: -1})
	defer m.Close()
	k := Key{2, 4}
	if err := m.Acquire(1, birth(1), k, Exclusive); err != nil {
		t.Fatal(err)
	}
	r1 := make(chan error, 1)
	go func() { r1 <- m.Acquire(2, birth(2), k, Shared) }()
	time.Sleep(5 * time.Millisecond)
	r2 := make(chan error, 1)
	go func() { r2 <- m.Acquire(3, birth(3), k, Shared) }()
	time.Sleep(5 * time.Millisecond)
	if m.QueueLen(k) != 2 {
		t.Fatalf("queue = %d, want 2", m.QueueLen(k))
	}
	m.ReleaseAll(1)
	// Both S waiters are compatible; the grant pass conveys both.
	for _, ch := range []chan error{r1, r2} {
		select {
		case err := <-ch:
			if err != nil {
				t.Fatal(err)
			}
		case <-time.After(time.Second):
			t.Fatal("S waiter not granted after release")
		}
	}
	if got := m.HolderCount(k); got != 2 {
		t.Fatalf("holders = %d, want 2", got)
	}
}

func TestWriterNotStarvedByReaders(t *testing.T) {
	// S holder; X waiter; then S arrivals. The S arrivals must queue
	// behind the X waiter (footnote 7 of the paper), for every scheduler.
	for _, sched := range []Scheduler{FCFS{}, VATS{}, RS{}} {
		m := NewManager(Options{Scheduler: sched, DetectInterval: -1})
		k := Key{2, 5}
		if err := m.Acquire(1, birth(1), k, Shared); err != nil {
			t.Fatal(err)
		}
		xc := make(chan error, 1)
		go func() { xc <- m.Acquire(2, birth(2), k, Exclusive) }()
		time.Sleep(5 * time.Millisecond)
		sc := make(chan error, 1)
		go func() { sc <- m.Acquire(3, birth(3), k, Shared) }()
		select {
		case <-sc:
			t.Fatalf("%s: late S reader jumped the waiting writer", sched.Name())
		case <-time.After(10 * time.Millisecond):
		}
		m.ReleaseAll(1)
		if err := <-xc; err != nil {
			t.Fatalf("%s: writer: %v", sched.Name(), err)
		}
		m.ReleaseAll(2)
		if err := <-sc; err != nil {
			t.Fatalf("%s: reader: %v", sched.Name(), err)
		}
		m.ReleaseAll(3)
		m.Close()
	}
}

func TestVATSEldestSArrivalJoinsReaders(t *testing.T) {
	// Readers hold S; an *eldest* S arrival with no conflicting waiter
	// ahead should be granted immediately under VATS's conveyance rule.
	m := NewManager(Options{Scheduler: VATS{}, DetectInterval: -1})
	defer m.Close()
	k := Key{2, 6}
	if err := m.Acquire(1, birth(5), k, Shared); err != nil {
		t.Fatal(err)
	}
	// A waiting X from a *younger* txn.
	xc := make(chan error, 1)
	go func() { xc <- m.Acquire(2, birth(9), k, Exclusive) }()
	time.Sleep(5 * time.Millisecond)
	// An elder S arrival: ahead of the X in eldest-first order and
	// compatible with holders, so VATS grants it immediately.
	done := make(chan error, 1)
	go func() { done <- m.Acquire(3, birth(1), k, Shared) }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(200 * time.Millisecond):
		t.Fatal("elder S arrival was not conveyed under VATS")
	}
	m.ReleaseAll(1)
	m.ReleaseAll(3)
	if err := <-xc; err != nil {
		t.Fatal(err)
	}
}

func TestDeadlockDetectedAndYoungestAborted(t *testing.T) {
	m := NewManager(Options{Scheduler: FCFS{}, DetectInterval: time.Millisecond})
	defer m.Close()
	k1, k2 := Key{3, 1}, Key{3, 2}
	if err := m.Acquire(1, birth(1), k1, Exclusive); err != nil { // elder
		t.Fatal(err)
	}
	if err := m.Acquire(2, birth(2), k2, Exclusive); err != nil { // younger
		t.Fatal(err)
	}
	r1 := make(chan error, 1)
	r2 := make(chan error, 1)
	go func() { r1 <- m.Acquire(1, birth(1), k2, Exclusive) }()
	go func() { r2 <- m.Acquire(2, birth(2), k1, Exclusive) }()

	select {
	case err := <-r2:
		if !errors.Is(err, ErrDeadlock) {
			t.Fatalf("victim got %v, want ErrDeadlock", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("deadlock not detected")
	}
	// Victim releases; elder proceeds.
	m.ReleaseAll(2)
	select {
	case err := <-r1:
		if err != nil {
			t.Fatalf("survivor got %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("survivor never granted")
	}
	if m.Stats().Deadlocks == 0 {
		t.Error("deadlock counter not incremented")
	}
}

func TestUpgradeDeadlockResolved(t *testing.T) {
	m := NewManager(Options{Scheduler: VATS{}, DetectInterval: time.Millisecond})
	defer m.Close()
	k := Key{3, 3}
	if err := m.Acquire(1, birth(1), k, Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(2, birth(2), k, Shared); err != nil {
		t.Fatal(err)
	}
	r1 := make(chan error, 1)
	r2 := make(chan error, 1)
	go func() { r1 <- m.Acquire(1, birth(1), k, Exclusive) }()
	go func() { r2 <- m.Acquire(2, birth(2), k, Exclusive) }()
	var errs []error
	for i := 0; i < 1; i++ {
		select {
		case err := <-r1:
			errs = append(errs, err)
			m.ReleaseAll(1)
		case err := <-r2:
			errs = append(errs, err)
			m.ReleaseAll(2)
		case <-time.After(2 * time.Second):
			t.Fatal("upgrade-upgrade deadlock not resolved")
		}
	}
	if !errors.Is(errs[0], ErrDeadlock) {
		t.Fatalf("first resolution = %v, want deadlock victim", errs[0])
	}
}

func TestWaitTimeout(t *testing.T) {
	m := NewManager(Options{Scheduler: FCFS{}, WaitTimeout: 20 * time.Millisecond, DetectInterval: -1})
	defer m.Close()
	k := Key{3, 4}
	if err := m.Acquire(1, birth(1), k, Exclusive); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.Acquire(2, birth(2), k, Exclusive)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("timed out too early")
	}
	if m.QueueLen(k) != 0 {
		t.Error("timed-out waiter left in queue")
	}
	if m.Stats().Timeouts != 1 {
		t.Errorf("timeouts = %d", m.Stats().Timeouts)
	}
	// The lock still works afterwards.
	m.ReleaseAll(1)
	if err := m.Acquire(2, birth(2), k, Exclusive); err != nil {
		t.Fatal(err)
	}
}

func TestReleaseAllCancelsPendingWaits(t *testing.T) {
	m := NewManager(Options{Scheduler: FCFS{}, DetectInterval: -1})
	defer m.Close()
	k := Key{3, 5}
	if err := m.Acquire(1, birth(1), k, Exclusive); err != nil {
		t.Fatal(err)
	}
	r := make(chan error, 1)
	go func() { r <- m.Acquire(2, birth(2), k, Exclusive) }()
	time.Sleep(5 * time.Millisecond)
	m.ReleaseAll(2) // abort txn 2: its pending wait must fail
	select {
	case err := <-r:
		if !errors.Is(err, ErrAborted) {
			t.Fatalf("err = %v, want ErrAborted", err)
		}
	case <-time.After(time.Second):
		t.Fatal("pending wait not cancelled")
	}
}

func TestTimeoutRaceWithGrant(t *testing.T) {
	// Stress the timeout-vs-grant race: many rounds of a short-timeout
	// waiter whose lock is released right at the deadline.
	m := NewManager(Options{Scheduler: FCFS{}, WaitTimeout: time.Millisecond, DetectInterval: -1})
	defer m.Close()
	k := Key{3, 6}
	for i := 0; i < 50; i++ {
		if err := m.Acquire(1, birth(1), k, Exclusive); err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() { done <- m.Acquire(2, birth(2), k, Exclusive) }()
		time.Sleep(time.Millisecond)
		m.ReleaseAll(1)
		err := <-done
		if err == nil {
			m.ReleaseAll(2)
		} else if !errors.Is(err, ErrTimeout) {
			t.Fatalf("round %d: %v", i, err)
		}
		if m.QueueLen(k) != 0 {
			t.Fatalf("round %d: queue leaked", i)
		}
	}
	if m.HolderCount(k) != 0 {
		t.Fatal("holders leaked")
	}
}

func TestMutualExclusionUnderLoad(t *testing.T) {
	// Property: X locks give true mutual exclusion; S locks exclude X.
	for _, sched := range []Scheduler{FCFS{}, VATS{}, RS{}} {
		sched := sched
		t.Run(sched.Name(), func(t *testing.T) {
			m := NewManager(Options{Scheduler: sched, DetectInterval: time.Millisecond, WaitTimeout: time.Second})
			defer m.Close()
			const keys = 8
			var writers [keys]atomic.Int32
			var readers [keys]atomic.Int32
			var violations atomic.Int32
			var wg sync.WaitGroup
			for g := 0; g < 16; g++ {
				wg.Add(1)
				gid := g
				go func() {
					defer wg.Done()
					b := birth(gid)
					for i := 0; i < 60; i++ {
						id := TxnID(gid*1000 + i + 1)
						k := Key{4, uint64((gid + i) % keys)}
						if (gid+i)%3 == 0 {
							if err := m.Acquire(id, b, k, Exclusive); err == nil {
								if writers[k.ID].Add(1) != 1 || readers[k.ID].Load() != 0 {
									violations.Add(1)
								}
								writers[k.ID].Add(-1)
							}
						} else {
							if err := m.Acquire(id, b, k, Shared); err == nil {
								if writers[k.ID].Load() != 0 {
									violations.Add(1)
								}
								readers[k.ID].Add(1)
								readers[k.ID].Add(-1)
							}
						}
						m.ReleaseAll(id)
					}
				}()
			}
			wg.Wait()
			if violations.Load() != 0 {
				t.Fatalf("%d mutual-exclusion violations", violations.Load())
			}
			for i := 0; i < keys; i++ {
				k := Key{4, uint64(i)}
				if m.HolderCount(k) != 0 || m.QueueLen(k) != 0 {
					t.Fatalf("key %v leaked state", k)
				}
			}
		})
	}
}

func TestStatsCounters(t *testing.T) {
	m := newMgr(VATS{})
	defer m.Close()
	k := Key{5, 1}
	if err := m.Acquire(1, birth(1), k, Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(2, birth(2), k, Exclusive) }()
	time.Sleep(5 * time.Millisecond)
	m.ReleaseAll(1)
	<-done
	st := m.Stats()
	if st.Acquires != 2 {
		t.Errorf("acquires = %d", st.Acquires)
	}
	if st.Waits != 1 {
		t.Errorf("waits = %d", st.Waits)
	}
	if st.WaitTime <= 0 {
		t.Errorf("wait time = %v", st.WaitTime)
	}
}

func TestByName(t *testing.T) {
	if ByName("VATS").Name() != "VATS" || ByName("vats").Name() != "VATS" {
		t.Error("ByName VATS")
	}
	if ByName("RS").Name() != "RS" {
		t.Error("ByName RS")
	}
	if ByName("anything").Name() != "FCFS" {
		t.Error("ByName default")
	}
}

func TestModeStringAndKeyString(t *testing.T) {
	if Shared.String() != "S" || Exclusive.String() != "X" {
		t.Error("mode strings")
	}
	if (Key{1, 2}).String() != "1:2" {
		t.Error("key string")
	}
	if Compatible(Shared, Exclusive) || !Compatible(Shared, Shared) {
		t.Error("compatibility matrix")
	}
}
