// Package lock implements the record lock manager at the heart of the
// paper's contribution: two-phase locking with per-object wait queues and
// a pluggable lock scheduler.
//
// The default scheduler in MySQL and Postgres is First-Come-First-Served
// (FCFS). The paper's TProfiler study finds that variability in lock wait
// time under FCFS is the dominant source of transaction latency variance
// (>59% in MySQL), and §5 proposes Variance-Aware Transaction Scheduling
// (VATS): when a lock becomes available, grant it to the *eldest*
// transaction (largest age since transaction birth) rather than the one
// that arrived in this queue first. Theorem 1 shows VATS minimizes the
// expected Lp norm of transaction latencies when remaining times are
// i.i.d. — simultaneously reducing mean, variance, and tail latency.
//
// This package provides FCFS, VATS, and RS (random) schedulers behind the
// Scheduler interface, plus wait-for-graph deadlock detection and
// wait timeouts, both scheduler-agnostic so policy comparisons are fair.
package lock

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vats/internal/obs"
)

// TxnID identifies a transaction to the lock manager.
type TxnID uint64

// Mode is a lock mode.
type Mode int

const (
	// Shared is a read lock; shared locks are mutually compatible.
	Shared Mode = iota
	// Exclusive is a write lock; exclusive locks conflict with everything.
	Exclusive
)

// String returns "S" or "X".
func (m Mode) String() string {
	if m == Exclusive {
		return "X"
	}
	return "S"
}

// Compatible reports whether two lock modes can be held simultaneously by
// different transactions.
func Compatible(a, b Mode) bool { return a == Shared && b == Shared }

// Key names a lockable object (a record in a table).
type Key struct {
	Space uint32 // table / index id
	ID    uint64 // record id
}

// String renders the key for diagnostics.
func (k Key) String() string { return fmt.Sprintf("%d:%d", k.Space, k.ID) }

// Errors returned by Acquire.
var (
	// ErrDeadlock means the transaction was chosen as a deadlock victim
	// and must abort.
	ErrDeadlock = errors.New("lock: deadlock victim")
	// ErrTimeout means the lock wait exceeded Options.WaitTimeout.
	ErrTimeout = errors.New("lock: wait timeout")
	// ErrAborted means the transaction's pending waits were cancelled by
	// Abort.
	ErrAborted = errors.New("lock: transaction aborted")
)

// Request is a (possibly waiting) lock request. Schedulers order waiting
// Requests; the manager owns all other fields.
type Request struct {
	Owner TxnID
	Mode  Mode
	// Birth is the owning transaction's start time; VATS grants locks
	// eldest-Birth-first. The paper calls time-since-Birth the
	// transaction's age A(T).
	Birth time.Time
	// Seq is the arrival sequence number in this queue (FCFS order).
	Seq uint64
	// RandPrio is a per-request random priority used by the RS scheduler.
	RandPrio uint64

	key     Key
	upgrade bool
	granted chan error
	done    bool // guarded by shard mutex; set once resolved
	// inHolders reports whether a granted request was installed in the
	// holder list (false when an upgrade was merged into the existing
	// holder). Written under the shard mutex before the grant is sent;
	// the waiter reads it after receiving, so the channel orders it.
	inHolders bool
	// gen is the request's reuse generation. Requests are pooled per
	// shard; the deadlock detector snapshots (req, gen) pairs and
	// re-validates them under the shard mutex, so a request recycled to
	// a new wait cannot be mistaken for the snapshot's (ABA).
	gen uint64
}

// Stats aggregates lock-manager activity.
type Stats struct {
	Acquires     int64
	Waits        int64
	WaitTime     time.Duration
	Deadlocks    int64
	Timeouts     int64
	UpgradeWaits int64
}

// Options configures a Manager.
type Options struct {
	// Scheduler decides grant order; nil means FCFS.
	Scheduler Scheduler
	// Shards is the number of hash shards (default 64).
	Shards int
	// WaitTimeout bounds each lock wait; 0 means no timeout.
	WaitTimeout time.Duration
	// DetectInterval is how often the deadlock detector scans when
	// waiters exist (default 1ms). Negative disables detection.
	DetectInterval time.Duration
	// Obs receives live metrics (wait latency, queue depth, grant and
	// failure counts, labelled by scheduler policy); nil collects
	// nothing.
	Obs *obs.Obs
}

// Manager is a sharded record lock manager implementing strict 2PL lock
// acquisition with scheduler-controlled grant order.
type Manager struct {
	sched   Scheduler
	shards  []*shard
	timeout time.Duration
	met     *obs.LockMetrics

	acquires  atomic.Int64
	waits     atomic.Int64
	waitNs    atomic.Int64
	deadlocks atomic.Int64
	timeouts  atomic.Int64
	upWaits   atomic.Int64

	detectEvery time.Duration
	stopDetect  chan struct{}
	detectOnce  sync.Once
	waiterCount atomic.Int64
}

type shard struct {
	mu    sync.Mutex
	locks map[Key]*lockState
	// held tracks, per owner, the keys it holds locks on in this shard,
	// so ReleaseAll need not scan the whole table. The key slices are
	// recycled through keyFree.
	held map[TxnID][]Key
	// waiting counts pending waiters per owner, so the commit-path
	// ReleaseAll (which never has waits to cancel) skips the
	// cancellation scan entirely.
	waiting map[TxnID]int
	seq     uint64
	rng     uint64 // xorshift state for RandPrio
	// states counts live lockStates; ReleaseAll skips shards whose
	// count reads zero without taking the mutex (an owner with state in
	// the shard keeps the count nonzero until it removes that state
	// itself, so the racy read is safe for the releasing owner).
	states atomic.Int64

	// reqPool and statePool recycle Requests (with their grant channels)
	// and lockStates. Both pools are per shard, so a recycled Request's
	// mutable fields stay guarded by this shard's mutex for their whole
	// life — a global pool would let a request migrate to another shard
	// and race the deadlock detector's re-validation.
	reqPool   sync.Pool
	statePool sync.Pool
	keyFree   [][]Key
}

type lockState struct {
	holders []*Request
	waiters []*Request
}

func (s *shard) newLockState() *lockState {
	if ls, _ := s.statePool.Get().(*lockState); ls != nil {
		return ls
	}
	return &lockState{}
}

// freeReqLocked recycles a resolved request. Caller holds s.mu and
// guarantees no goroutine will touch the request again (its grant
// channel has been drained or never sent to). Bumping gen invalidates
// any stale detector snapshot of the old incarnation.
func (s *shard) freeReqLocked(req *Request) {
	req.gen++
	s.reqPool.Put(req)
}

func (s *shard) waiterAdded(owner TxnID) { s.waiting[owner]++ }

func (s *shard) waiterRemoved(owner TxnID) {
	if c := s.waiting[owner] - 1; c <= 0 {
		delete(s.waiting, owner)
	} else {
		s.waiting[owner] = c
	}
}

// NewManager builds a lock manager.
func NewManager(opts Options) *Manager {
	if opts.Scheduler == nil {
		opts.Scheduler = FCFS{}
	}
	if opts.Shards <= 0 {
		opts.Shards = 64
	}
	if opts.DetectInterval == 0 {
		opts.DetectInterval = time.Millisecond
	}
	m := &Manager{
		sched:       opts.Scheduler,
		shards:      make([]*shard, opts.Shards),
		timeout:     opts.WaitTimeout,
		detectEvery: opts.DetectInterval,
		stopDetect:  make(chan struct{}),
		met:         obs.NewLockMetrics(opts.Obs, opts.Scheduler.Name()),
	}
	for i := range m.shards {
		m.shards[i] = &shard{
			locks:   make(map[Key]*lockState),
			held:    make(map[TxnID][]Key),
			waiting: make(map[TxnID]int),
			rng:     uint64(i)*2654435761 + 1,
		}
	}
	return m
}

// Close stops the background deadlock detector, if started.
func (m *Manager) Close() {
	m.detectOnce.Do(func() {}) // ensure Do below cannot start it afresh
	select {
	case <-m.stopDetect:
	default:
		close(m.stopDetect)
	}
}

// Scheduler returns the scheduler in use.
func (m *Manager) Scheduler() Scheduler { return m.sched }

func (m *Manager) shardFor(k Key) *shard {
	h := uint64(k.Space)*0x9e3779b1 ^ k.ID*0xff51afd7ed558ccd
	h ^= h >> 33
	return m.shards[h%uint64(len(m.shards))]
}

// Acquire obtains a lock of the given mode on key for owner, blocking
// until granted. birth is the owning transaction's start time (its age
// basis). It returns ErrDeadlock, ErrTimeout or ErrAborted when the wait
// cannot be satisfied. Re-acquiring an already-held lock of equal or
// weaker mode is a no-op; requesting Exclusive while holding Shared
// performs a lock upgrade.
func (m *Manager) Acquire(owner TxnID, birth time.Time, key Key, mode Mode) error {
	m.acquires.Add(1)
	s := m.shardFor(key)

	s.mu.Lock()
	ls := s.locks[key]
	if ls == nil {
		// Uncontended fast path: no state exists for the key, so there is
		// nothing to be compatible with and no scheduler decision to make.
		// With the pooled lockState and Request this path allocates
		// nothing in steady state.
		ls = s.newLockState()
		s.locks[key] = ls
		s.states.Add(1)
		req := m.newRequest(s, owner, birth, key, mode)
		req.inHolders = true
		ls.holders = append(ls.holders, req)
		m.trackHeld(s, owner, key)
		s.mu.Unlock()
		m.met.Granted()
		return nil
	}

	// Re-entrancy and upgrade analysis.
	var mine *Request
	othersHold := false
	for _, h := range ls.holders {
		if h.Owner == owner {
			mine = h
		} else {
			othersHold = true
		}
	}
	if mine != nil {
		if mine.Mode == Exclusive || mode == Shared {
			s.mu.Unlock()
			m.met.Granted()
			return nil // already strong enough
		}
		// Upgrade S -> X.
		if !othersHold && !m.waitingConflict(ls, owner) {
			mine.Mode = Exclusive
			s.mu.Unlock()
			m.met.Granted()
			return nil
		}
		req := m.newRequest(s, owner, birth, key, Exclusive)
		req.upgrade = true
		m.upWaits.Add(1)
		m.met.UpgradeWait()
		// Upgrades wait at the front conceptually: they are grantable
		// as soon as the owner is the sole holder.
		ls.waiters = append(ls.waiters, req)
		s.waiterAdded(owner)
		m.waiterCount.Add(1)
		m.met.Enqueued()
		m.ensureDetector()
		s.mu.Unlock()
		return m.wait(s, req)
	}

	// Fresh request.
	req := m.newRequest(s, owner, birth, key, mode)
	if m.grantableOnArrival(ls, req) {
		req.inHolders = true
		ls.holders = append(ls.holders, req)
		m.trackHeld(s, owner, key)
		s.mu.Unlock()
		m.met.Granted()
		return nil
	}
	ls.waiters = append(ls.waiters, req)
	s.waiterAdded(owner)
	m.waiterCount.Add(1)
	m.met.Enqueued()
	m.ensureDetector()
	if m.sched.GrantOnArrival() {
		m.grantPassLocked(s, key, ls)
		if req.done {
			s.mu.Unlock()
			m.waiterCount.Add(-1)
			// done can only be set with a grant or error already queued.
			err := <-req.granted
			m.settleRequest(s, req, err)
			m.obsResolve(err, 0)
			return err
		}
	}
	s.mu.Unlock()
	return m.wait(s, req)
}

// settleRequest recycles a request whose wait has resolved and whose
// grant channel has been drained. Granted requests installed as holders
// stay live until ReleaseAll frees them; everything else (failed waits,
// upgrades merged into the existing holder) is recycled here. inHolders
// was written under the shard mutex before the grant was sent, so
// reading it after the receive is ordered by the channel.
func (m *Manager) settleRequest(s *shard, req *Request, err error) {
	if err == nil && req.inHolders {
		return
	}
	s.mu.Lock()
	s.freeReqLocked(req)
	s.mu.Unlock()
}

// obsResolve reports a resolved wait to the metrics layer: the queue
// departure with its wait time, and the grant or failure cause.
func (m *Manager) obsResolve(err error, waited time.Duration) {
	if m.met == nil {
		return
	}
	m.met.WaitDone(waited)
	switch {
	case err == nil:
		m.met.Granted()
	case errors.Is(err, ErrDeadlock):
		m.met.Deadlock()
	case errors.Is(err, ErrTimeout):
		m.met.Timeout()
	case errors.Is(err, ErrAborted):
		m.met.WaitAborted()
	}
}

func (m *Manager) newRequest(s *shard, owner TxnID, birth time.Time, key Key, mode Mode) *Request {
	s.seq++
	s.rng ^= s.rng << 13
	s.rng ^= s.rng >> 7
	s.rng ^= s.rng << 17
	req, _ := s.reqPool.Get().(*Request)
	if req == nil {
		req = &Request{granted: make(chan error, 1)}
	}
	req.Owner = owner
	req.Mode = mode
	req.Birth = birth
	req.Seq = s.seq
	req.RandPrio = s.rng
	req.key = key
	req.upgrade = false
	req.done = false
	req.inHolders = false
	return req
}

// grantableOnArrival implements the arrival rule shared by all
// schedulers, matching the paper's §5.1: grant immediately iff the request
// is compatible with all current holders and no other transaction is
// waiting in the queue.
func (m *Manager) grantableOnArrival(ls *lockState, req *Request) bool {
	if len(ls.waiters) > 0 {
		return false
	}
	for _, h := range ls.holders {
		if h.Owner != req.Owner && !Compatible(h.Mode, req.Mode) {
			return false
		}
	}
	return true
}

func (m *Manager) waitingConflict(ls *lockState, owner TxnID) bool {
	for _, w := range ls.waiters {
		if w.Owner != owner && w.upgrade {
			return true
		}
	}
	return false
}

// trackHeld records that owner holds a lock on key in this shard. The
// per-owner slice may contain a duplicate key when an upgrade is
// re-granted; ReleaseAll tolerates that (the second pass finds the
// owner's holders already gone).
func (m *Manager) trackHeld(s *shard, owner TxnID, key Key) {
	hk, ok := s.held[owner]
	if !ok && len(s.keyFree) > 0 {
		n := len(s.keyFree) - 1
		hk, s.keyFree = s.keyFree[n][:0], s.keyFree[:n]
	}
	s.held[owner] = append(hk, key)
}

func (m *Manager) wait(s *shard, req *Request) error {
	m.waits.Add(1)
	start := time.Now()
	var timer *time.Timer
	var timeoutC <-chan time.Time
	if m.timeout > 0 {
		timer = time.NewTimer(m.timeout)
		timeoutC = timer.C
		defer timer.Stop()
	}
	select {
	case err := <-req.granted:
		m.waitNs.Add(time.Since(start).Nanoseconds())
		m.waiterCount.Add(-1)
		if err != nil {
			m.deadlocksOrAborts(err)
		}
		m.settleRequest(s, req, err)
		m.obsResolve(err, time.Since(start))
		return err
	case <-timeoutC:
		// Race: the grant may have happened concurrently. Resolve under
		// the shard lock.
		s.mu.Lock()
		if req.done {
			s.mu.Unlock()
			err := <-req.granted
			m.waitNs.Add(time.Since(start).Nanoseconds())
			m.waiterCount.Add(-1)
			if err != nil {
				m.deadlocksOrAborts(err)
			}
			m.settleRequest(s, req, err)
			m.obsResolve(err, time.Since(start))
			return err
		}
		m.removeWaiterLocked(s, req)
		s.freeReqLocked(req)
		s.mu.Unlock()
		m.waitNs.Add(time.Since(start).Nanoseconds())
		m.waiterCount.Add(-1)
		m.timeouts.Add(1)
		m.obsResolve(ErrTimeout, time.Since(start))
		return ErrTimeout
	}
}

func (m *Manager) deadlocksOrAborts(err error) {
	if errors.Is(err, ErrDeadlock) {
		m.deadlocks.Add(1)
	}
}

// removeWaiterLocked removes req from its queue; caller holds s.mu.
func (m *Manager) removeWaiterLocked(s *shard, req *Request) {
	ls := s.locks[req.key]
	if ls == nil {
		return
	}
	for i, w := range ls.waiters {
		if w == req {
			ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
			s.waiterRemoved(req.Owner)
			break
		}
	}
	req.done = true
	// Removing a waiter can unblock others (it may have been the
	// incompatible one ahead of them).
	m.grantPassLocked(s, req.key, ls)
	m.cleanupLocked(s, req.key, ls)
}

func (m *Manager) cleanupLocked(s *shard, key Key, ls *lockState) {
	if len(ls.holders) == 0 && len(ls.waiters) == 0 {
		delete(s.locks, key)
		s.states.Add(-1)
		s.statePool.Put(ls)
	}
}

// ReleaseAll releases every lock held by owner and cancels its pending
// waits. This is the strict-2PL unlock at commit/abort time.
func (m *Manager) ReleaseAll(owner TxnID) {
	for _, s := range m.shards {
		if s.states.Load() == 0 {
			// Nothing lives in this shard. The owner's own lock state (if
			// it had any) can only be removed by this very call, so the
			// racy read can never skip a shard the owner has locks or
			// waits in.
			continue
		}
		s.mu.Lock()
		keys := s.held[owner]
		if keys != nil {
			delete(s.held, owner)
			for _, key := range keys {
				ls := s.locks[key]
				if ls == nil {
					continue // duplicate key from an upgrade re-grant
				}
				for i := 0; i < len(ls.holders); {
					if h := ls.holders[i]; h.Owner == owner {
						ls.holders = append(ls.holders[:i], ls.holders[i+1:]...)
						// The owner's Acquire returned long ago; only stale
						// detector snapshots still reference h, and the gen
						// bump invalidates those.
						s.freeReqLocked(h)
					} else {
						i++
					}
				}
				m.grantPassLocked(s, key, ls)
				m.cleanupLocked(s, key, ls)
			}
			s.keyFree = append(s.keyFree, keys)
		}
		// Cancel pending waits (abort path; a committing txn has none).
		if s.waiting[owner] > 0 {
			m.cancelWaitsLocked(s, owner, ErrAborted)
		}
		s.mu.Unlock()
	}
}

func (m *Manager) cancelWaitsLocked(s *shard, owner TxnID, cause error) {
	if s.waiting[owner] == 0 {
		return
	}
	for key, ls := range s.locks {
		changed := false
		for i := 0; i < len(ls.waiters); {
			w := ls.waiters[i]
			if w.Owner == owner && !w.done {
				ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
				w.done = true
				s.waiterRemoved(owner)
				w.granted <- cause
				changed = true
			} else {
				i++
			}
		}
		if changed {
			m.grantPassLocked(s, key, ls)
			m.cleanupLocked(s, key, ls)
		}
	}
}

// grantPassLocked grants as many waiting requests as the scheduler's
// order allows: a waiter is granted iff it is compatible with all current
// holders and does not conflict with any still-waiting request ahead of
// it in the scheduler's order. Caller holds s.mu.
func (m *Manager) grantPassLocked(s *shard, key Key, ls *lockState) {
	if len(ls.waiters) == 0 {
		return
	}
	order := m.sched.Order(ls.waiters)
	var blockedAhead []*Request
	for _, w := range order {
		if w.done {
			continue
		}
		if m.grantableLocked(ls, w, blockedAhead) {
			m.grantLocked(s, key, ls, w)
		} else {
			blockedAhead = append(blockedAhead, w)
		}
	}
}

func (m *Manager) grantableLocked(ls *lockState, w *Request, ahead []*Request) bool {
	if w.upgrade {
		// Grantable when the owner is the sole holder.
		for _, h := range ls.holders {
			if h.Owner != w.Owner {
				return false
			}
		}
		return true
	}
	for _, h := range ls.holders {
		if h.Owner != w.Owner && !Compatible(h.Mode, w.Mode) {
			return false
		}
	}
	for _, a := range ahead {
		if a.Owner != w.Owner && !Compatible(a.Mode, w.Mode) {
			return false
		}
	}
	return true
}

func (m *Manager) grantLocked(s *shard, key Key, ls *lockState, w *Request) {
	for i, q := range ls.waiters {
		if q == w {
			ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
			s.waiterRemoved(w.Owner)
			break
		}
	}
	w.done = true
	if w.upgrade {
		upgraded := false
		for _, h := range ls.holders {
			if h.Owner == w.Owner {
				h.Mode = Exclusive
				upgraded = true
				break
			}
		}
		if !upgraded {
			// Holder vanished (owner released while upgrade waited);
			// grant as a fresh exclusive lock.
			w.inHolders = true
			ls.holders = append(ls.holders, w)
		}
	} else {
		w.inHolders = true
		ls.holders = append(ls.holders, w)
	}
	m.trackHeld(s, w.Owner, key)
	w.granted <- nil
}

// Held reports whether owner currently holds a lock on key, and its mode.
func (m *Manager) Held(owner TxnID, key Key) (Mode, bool) {
	s := m.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.locks[key]
	if ls == nil {
		return 0, false
	}
	for _, h := range ls.holders {
		if h.Owner == owner {
			return h.Mode, true
		}
	}
	return 0, false
}

// QueueLen returns the number of transactions waiting on key.
func (m *Manager) QueueLen(key Key) int {
	s := m.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.locks[key]
	if ls == nil {
		return 0
	}
	return len(ls.waiters)
}

// HolderCount returns the number of granted locks on key.
func (m *Manager) HolderCount(key Key) int {
	s := m.shardFor(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.locks[key]
	if ls == nil {
		return 0
	}
	return len(ls.holders)
}

// Stats returns a snapshot of manager counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Acquires:     m.acquires.Load(),
		Waits:        m.waits.Load(),
		WaitTime:     time.Duration(m.waitNs.Load()),
		Deadlocks:    m.deadlocks.Load(),
		Timeouts:     m.timeouts.Load(),
		UpgradeWaits: m.upWaits.Load(),
	}
}
