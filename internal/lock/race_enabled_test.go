//go:build race

package lock

// raceEnabled reports whether the race detector is active. Under race
// the runtime makes sync.Pool drop items at random, so allocation-count
// assertions about pooled objects are meaningless.
const raceEnabled = true
