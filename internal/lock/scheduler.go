package lock

import "sort"

// Scheduler decides the order in which waiting lock requests are granted
// when a lock frees up. It corresponds to the paper's S = (Sf, Sa)
// formulation: Order defines the grant priority used by the release-time
// grant pass (Sf), and GrantOnArrival controls whether a grant pass also
// runs when new requests arrive while others wait (Sa).
//
// Order must not retain or mutate the requests; it returns a new slice in
// grant-priority order (highest priority first).
type Scheduler interface {
	// Name identifies the scheduler in reports ("FCFS", "VATS", "RS").
	Name() string
	// Order returns the waiters in grant-priority order.
	Order(ws []*Request) []*Request
	// GrantOnArrival reports whether arrivals trigger a grant pass while
	// other transactions wait. Strict FCFS (the MySQL/Postgres default)
	// does not: an arrival is granted only if the queue is empty.
	GrantOnArrival() bool
}

// FCFS is First-Come-First-Served: grant in arrival order. This is the
// default policy in MySQL and Postgres and the baseline the paper
// improves on.
type FCFS struct{}

// Name returns "FCFS".
func (FCFS) Name() string { return "FCFS" }

// Order sorts by arrival sequence in this queue.
func (FCFS) Order(ws []*Request) []*Request {
	out := append([]*Request(nil), ws...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// GrantOnArrival returns false: strict FCFS never grants past waiters.
func (FCFS) GrantOnArrival() bool { return false }

// VATS is the paper's Variance-Aware Transaction Scheduling: grant the
// eldest transaction first (smallest Birth, i.e., largest age), granting
// as many compatible locks as possible in eldest-first order. Theorem 1:
// with i.i.d. remaining times this minimizes the expected Lp norm of
// latencies for every p >= 1.
type VATS struct{}

// Name returns "VATS".
func (VATS) Name() string { return "VATS" }

// Order sorts eldest-first (earliest transaction birth first), breaking
// ties by queue arrival order.
func (VATS) Order(ws []*Request) []*Request {
	out := append([]*Request(nil), ws...)
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Birth.Equal(out[j].Birth) {
			return out[i].Birth.Before(out[j].Birth)
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// GrantOnArrival returns true, implementing the paper's practical variant
// that grants any request not conflicting with the locks (granted or
// waiting) ahead of it in eldest-first order.
func (VATS) GrantOnArrival() bool { return true }

// RS is Randomized Scheduling: like VATS but the queue is ordered by a
// per-request random priority instead of age. The paper uses RS as a
// control to show that FCFS is not merely unlucky — even random order
// beats it on some contended workloads — while randomness alone can also
// be catastrophic (SEATS).
type RS struct{}

// Name returns "RS".
func (RS) Name() string { return "RS" }

// Order sorts by the random priority assigned at enqueue time.
func (RS) Order(ws []*Request) []*Request {
	out := append([]*Request(nil), ws...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].RandPrio < out[j].RandPrio })
	return out
}

// GrantOnArrival returns true (same conveyance variant as VATS).
func (RS) GrantOnArrival() bool { return true }

// VATSStrict is an ablation of VATS without the paper's practical
// conveyance modification: only requests compatible with the current
// holders are granted, strictly in eldest-first order with no grants
// past the eldest incompatible waiter and no grant pass on arrivals.
// Comparing VATS and VATSStrict isolates how much of VATS's benefit
// comes from the "grant as many as possible" batching vs. the
// eldest-first order itself.
type VATSStrict struct{}

// Name returns "VATS-strict".
func (VATSStrict) Name() string { return "VATS-strict" }

// Order sorts eldest-first, as VATS does.
func (VATSStrict) Order(ws []*Request) []*Request { return VATS{}.Order(ws) }

// GrantOnArrival returns false: arrivals queue strictly.
func (VATSStrict) GrantOnArrival() bool { return false }

// ByName returns the scheduler with the given name, defaulting to FCFS.
func ByName(name string) Scheduler {
	switch name {
	case "VATS", "vats":
		return VATS{}
	case "VATS-strict", "vats-strict":
		return VATSStrict{}
	case "RS", "rs":
		return RS{}
	default:
		return FCFS{}
	}
}
