//go:build !race

package lock

const raceEnabled = false
