package lock

import (
	"testing"
	"testing/quick"
	"time"
)

// mkRequests builds a waiter list from (birth-offset, seq) pairs.
func mkRequests(pairs [][2]int) []*Request {
	out := make([]*Request, len(pairs))
	for i, p := range pairs {
		out[i] = &Request{
			Owner:    TxnID(i + 1),
			Birth:    t0.Add(time.Duration(p[0]) * time.Second),
			Seq:      uint64(p[1]),
			RandPrio: uint64(i*2654435761 + 7),
		}
	}
	return out
}

func TestFCFSOrderBySeq(t *testing.T) {
	ws := mkRequests([][2]int{{5, 3}, {1, 1}, {9, 2}})
	got := (FCFS{}).Order(ws)
	for i := 1; i < len(got); i++ {
		if got[i-1].Seq > got[i].Seq {
			t.Fatalf("FCFS order not by seq: %v then %v", got[i-1].Seq, got[i].Seq)
		}
	}
}

func TestVATSOrderEldestFirst(t *testing.T) {
	ws := mkRequests([][2]int{{5, 1}, {1, 2}, {9, 3}})
	got := (VATS{}).Order(ws)
	for i := 1; i < len(got); i++ {
		if got[i-1].Birth.After(got[i].Birth) {
			t.Fatalf("VATS order not eldest-first")
		}
	}
	if got[0].Birth != t0.Add(time.Second) {
		t.Fatalf("eldest not first")
	}
}

func TestVATSTieBreakBySeq(t *testing.T) {
	ws := mkRequests([][2]int{{3, 9}, {3, 1}, {3, 5}})
	got := (VATS{}).Order(ws)
	for i := 1; i < len(got); i++ {
		if got[i-1].Seq > got[i].Seq {
			t.Fatalf("equal-age tie not broken by seq")
		}
	}
}

// Property: every scheduler's Order is a permutation of its input and
// does not mutate the input slice.
func TestOrderIsPermutation(t *testing.T) {
	scheds := []Scheduler{FCFS{}, VATS{}, RS{}, VATSStrict{}}
	f := func(raw []uint8) bool {
		if len(raw) == 0 || len(raw) > 40 {
			return true
		}
		pairs := make([][2]int, len(raw))
		for i, r := range raw {
			pairs[i] = [2]int{int(r % 17), i}
		}
		ws := mkRequests(pairs)
		orig := append([]*Request(nil), ws...)
		for _, s := range scheds {
			got := s.Order(ws)
			if len(got) != len(ws) {
				return false
			}
			seen := map[*Request]bool{}
			for _, r := range got {
				if seen[r] {
					return false // duplicate
				}
				seen[r] = true
			}
			for _, r := range ws {
				if !seen[r] {
					return false // missing
				}
			}
			for i := range ws {
				if ws[i] != orig[i] {
					return false // input mutated
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestRSOrderIsStablePerQueue(t *testing.T) {
	// RS sorts by the random priority assigned at enqueue: calling
	// Order twice on the same waiters yields the same order.
	ws := mkRequests([][2]int{{1, 1}, {2, 2}, {3, 3}, {4, 4}})
	a := (RS{}).Order(ws)
	b := (RS{}).Order(ws)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("RS order not stable for a fixed queue")
		}
	}
}

func TestVATSStrictBehaviour(t *testing.T) {
	if (VATSStrict{}).GrantOnArrival() {
		t.Fatal("strict variant must not grant on arrival")
	}
	ws := mkRequests([][2]int{{5, 1}, {1, 2}})
	if got := (VATSStrict{}).Order(ws); got[0].Birth.After(got[1].Birth) {
		t.Fatal("strict variant must still order eldest-first")
	}
	if ByName("VATS-strict").Name() != "VATS-strict" {
		t.Fatal("ByName missing strict variant")
	}
}

func TestVATSStrictEndToEnd(t *testing.T) {
	// The strict variant still provides mutual exclusion and grants
	// eldest-first on release.
	m := NewManager(Options{Scheduler: VATSStrict{}, DetectInterval: -1})
	defer m.Close()
	order := grantOrder(t, m, Key{9, 1}, []time.Time{birth(3), birth(1), birth(2)})
	want := []TxnID{2, 3, 1} // births 1,2,3 in eldest-first order
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
