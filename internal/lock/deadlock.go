package lock

import (
	"sort"
	"time"
)

// The deadlock detector runs in a background goroutine whenever waiters
// exist. It builds the wait-for graph (waiter → conflicting holders, and
// waiter → conflicting waiters ahead of it in the scheduler's order),
// finds cycles with a DFS, and aborts the youngest transaction in each
// cycle by failing its pending Acquire with ErrDeadlock.
//
// Detection is deliberately scheduler-agnostic: TPC-C under 2PL deadlocks
// regardless of whether FCFS or VATS orders the queue, and the victim
// choice (youngest first) must not bias the FCFS-vs-VATS comparisons.

func (m *Manager) ensureDetector() {
	if m.detectEvery < 0 {
		return
	}
	m.detectOnce.Do(func() {
		go m.detectLoop()
	})
}

func (m *Manager) detectLoop() {
	ticker := time.NewTicker(m.detectEvery)
	defer ticker.Stop()
	for {
		select {
		case <-m.stopDetect:
			return
		case <-ticker.C:
			if m.waiterCount.Load() > 0 {
				m.DetectAndResolve()
			}
		}
	}
}

// waitEdge records that a transaction is waiting and whom it waits for.
// gen snapshots req.gen at graph-build time: requests are pooled, so by
// the time abortWaiter runs, req may have been recycled to an unrelated
// wait. A gen mismatch identifies that and voids the edge.
type waitEdge struct {
	birth time.Time
	req   *Request
	gen   uint64
	shard *shard
	on    []TxnID
}

// DetectAndResolve scans the wait-for graph once, aborting the youngest
// member of every cycle found. It returns the number of victims chosen.
// It is exported for tests and for engines that prefer synchronous
// detection.
func (m *Manager) DetectAndResolve() int {
	victims := 0
	for i := 0; i < 100; i++ { // bound work per scan
		graph := m.buildGraph()
		victim := findCycleVictim(graph)
		if victim == 0 {
			return victims
		}
		if m.abortWaiter(graph[victim]) {
			victims++
		}
	}
	return victims
}

// buildGraph snapshots the wait-for graph. Each shard is locked in turn,
// so the graph may be slightly stale under heavy churn; stale cycles can
// cause a rare spurious victim, which the engine handles like any other
// deadlock abort (retry).
func (m *Manager) buildGraph() map[TxnID]*waitEdge {
	graph := make(map[TxnID]*waitEdge)
	for _, s := range m.shards {
		s.mu.Lock()
		for _, ls := range s.locks {
			if len(ls.waiters) == 0 {
				continue
			}
			order := m.sched.Order(ls.waiters)
			for i, w := range order {
				if w.done {
					continue
				}
				e := graph[w.Owner]
				if e == nil {
					e = &waitEdge{birth: w.Birth, req: w, gen: w.gen, shard: s}
					graph[w.Owner] = e
				}
				for _, h := range ls.holders {
					if h.Owner != w.Owner && (w.upgrade || !Compatible(h.Mode, w.Mode)) {
						e.on = append(e.on, h.Owner)
					}
				}
				for _, a := range order[:i] {
					if a.done || a.Owner == w.Owner {
						continue
					}
					if !Compatible(a.Mode, w.Mode) {
						e.on = append(e.on, a.Owner)
					}
				}
			}
		}
		s.mu.Unlock()
	}
	return graph
}

// findCycleVictim runs a DFS over the graph and, upon finding a cycle,
// returns the youngest (latest-birth) waiting transaction in it. Returns
// 0 when the graph is acyclic.
func findCycleVictim(graph map[TxnID]*waitEdge) TxnID {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[TxnID]int, len(graph))
	var stack []TxnID

	// Deterministic iteration order helps tests.
	nodes := make([]TxnID, 0, len(graph))
	for id := range graph {
		nodes = append(nodes, id)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	var visit func(id TxnID) TxnID
	visit = func(id TxnID) TxnID {
		color[id] = grey
		stack = append(stack, id)
		e := graph[id]
		if e != nil {
			for _, next := range e.on {
				if graph[next] == nil {
					continue // waits on a running (non-waiting) txn: no cycle through it
				}
				switch color[next] {
				case white:
					if v := visit(next); v != 0 {
						return v
					}
				case grey:
					// Cycle: stack suffix from next..id.
					start := 0
					for i, s := range stack {
						if s == next {
							start = i
							break
						}
					}
					victim := stack[start]
					vb := graph[victim].birth
					for _, s := range stack[start:] {
						if graph[s].birth.After(vb) {
							victim, vb = s, graph[s].birth
						}
					}
					return victim
				}
			}
		}
		color[id] = black
		stack = stack[:len(stack)-1]
		return 0
	}

	for _, id := range nodes {
		if color[id] == white {
			stack = stack[:0]
			if v := visit(id); v != 0 {
				return v
			}
		}
	}
	return 0
}

// abortWaiter fails the victim's pending lock wait with ErrDeadlock.
// Returns false if the request resolved concurrently.
func (m *Manager) abortWaiter(e *waitEdge) bool {
	if e == nil {
		return false
	}
	s := e.shard
	s.mu.Lock()
	defer s.mu.Unlock()
	if e.req.gen != e.gen || e.req.done {
		// Resolved (and possibly recycled to a different wait) since the
		// graph was built.
		return false
	}
	ls := s.locks[e.req.key]
	if ls == nil {
		return false
	}
	for i, w := range ls.waiters {
		if w == e.req {
			ls.waiters = append(ls.waiters[:i], ls.waiters[i+1:]...)
			s.waiterRemoved(w.Owner)
			w.done = true
			w.granted <- ErrDeadlock
			m.grantPassLocked(s, e.req.key, ls)
			m.cleanupLocked(s, e.req.key, ls)
			return true
		}
	}
	return false
}
