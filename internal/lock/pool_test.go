package lock

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestAllocsFastPathZero is the allocation guardrail for the uncontended
// fast path: an exclusive acquire of a cold key plus ReleaseAll must not
// allocate in steady state — the lockState, the Request and its grant
// channel, and the held-key slice all come from per-shard pools.
func TestAllocsFastPathZero(t *testing.T) {
	if raceEnabled {
		t.Skip("race detector makes sync.Pool drop items randomly")
	}
	m := NewManager(Options{Scheduler: FCFS{}, DetectInterval: -1})
	defer m.Close()
	k := Key{1, 1}
	birth := time.Now()
	// Warm the pools.
	for i := 0; i < 16; i++ {
		if err := m.Acquire(1, birth, k, Exclusive); err != nil {
			t.Fatal(err)
		}
		m.ReleaseAll(1)
	}
	allocs := testing.AllocsPerRun(200, func() {
		m.Acquire(1, birth, k, Exclusive)
		m.ReleaseAll(1)
	})
	if allocs != 0 {
		t.Errorf("uncontended acquire/release allocates %.1f times, want 0", allocs)
	}
}

// TestRequestPoolReuseStress drives contended, deadlock-prone, timeout-
// prone traffic so pooled Requests are recycled while the detector holds
// stale snapshots of them. Run under -race this checks the generation
// guard: a recycled request must never be confused with its previous
// wait, and every acquire must resolve with a coherent verdict.
func TestRequestPoolReuseStress(t *testing.T) {
	m := NewManager(Options{
		Scheduler:      VATS{},
		WaitTimeout:    20 * time.Millisecond,
		DetectInterval: 200 * time.Microsecond,
		Shards:         4, // force key collisions onto shared pools
	})
	defer m.Close()

	const (
		workers = 8
		iters   = 300
		keys    = 6
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < iters; i++ {
				owner := TxnID(w*iters + i + 1)
				birth := time.Now()
				// Lock 2-3 keys in random order: plenty of deadlocks.
				n := 2 + rng.Intn(2)
				for j := 0; j < n; j++ {
					k := Key{1, uint64(rng.Intn(keys))}
					mode := Exclusive
					if rng.Intn(3) == 0 {
						mode = Shared
					}
					if err := m.Acquire(owner, birth, k, mode); err != nil {
						break // deadlock victim, timeout, or cancelled: all fine
					}
				}
				m.ReleaseAll(owner)
			}
		}(w)
	}
	wg.Wait()

	// Quiesced: no lock state may survive.
	for id := uint64(0); id < keys; id++ {
		k := Key{1, id}
		if n := m.HolderCount(k); n != 0 {
			t.Errorf("key %v still has %d holders after quiesce", k, n)
		}
		if n := m.QueueLen(k); n != 0 {
			t.Errorf("key %v still has %d waiters after quiesce", k, n)
		}
	}
}
