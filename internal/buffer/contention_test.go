package buffer

import (
	"sync"
	"testing"
	"time"
)

// TestCriticalCostCreatesContention verifies the simulation device
// behind the LLU experiments: with a wall-time critical section, eager
// promotions from concurrent workers queue on the pool mutex, while LLU
// workers defer instead of waiting.
func TestCriticalCostCreatesContention(t *testing.T) {
	run := func(policy UpdatePolicy) Stats {
		p := NewPool(Config{
			Capacity:     64,
			PageSize:     128,
			Policy:       policy,
			SpinWait:     5 * time.Microsecond,
			CriticalCost: 200 * time.Microsecond,
		})
		for i := uint64(1); i <= 64; i++ {
			fr, err := p.Create(PageID{1, i})
			if err != nil {
				t.Fatal(err)
			}
			fr.Release()
		}
		var wg sync.WaitGroup
		for g := 0; g < 6; g++ {
			wg.Add(1)
			seed := uint64(g)
			go func() {
				defer wg.Done()
				h := p.NewHandle()
				x := seed*2654435761 + 1
				for i := 0; i < 40; i++ {
					x ^= x << 13
					x ^= x >> 7
					x ^= x << 17
					fr, err := h.Fetch(PageID{1, x%64 + 1})
					if err != nil {
						t.Error(err)
						return
					}
					fr.Release()
				}
			}()
		}
		wg.Wait()
		return p.Stats()
	}

	eager := run(EagerLRU)
	if eager.Mutex.Contended == 0 {
		t.Error("eager mode saw no mutex contention despite the critical-section cost")
	}
	lazy := run(LazyLRU)
	if lazy.Deferred == 0 {
		t.Error("LLU deferred nothing despite a contended critical section")
	}
}

// TestHandleWaitAccounting checks TakeWaits reports and resets.
func TestHandleWaitAccounting(t *testing.T) {
	p := NewPool(Config{Capacity: 4, PageSize: 128, CriticalCost: time.Millisecond})
	for i := uint64(1); i <= 8; i++ { // 2x capacity: misses guaranteed
		fr, err := p.Create(PageID{1, i})
		if err != nil {
			t.Fatal(err)
		}
		fr.MarkDirty()
		fr.Release()
	}
	h := p.NewHandle()
	fr, err := h.Fetch(PageID{1, 1}) // evicted by now: a miss
	if err != nil {
		t.Fatal(err)
	}
	fr.Release()
	lru, _ := h.TakeWaits()
	if lru <= 0 {
		t.Errorf("miss path reported no LRU time (%v)", lru)
	}
	lru2, io2 := h.TakeWaits()
	if lru2 != 0 || io2 != 0 {
		t.Error("TakeWaits did not reset")
	}
}
