// Package buffer implements the buffer pool: a fixed-capacity page cache
// with InnoDB's young/old midpoint LRU (§6.1 of the paper), backed by a
// simulated disk.
//
// MySQL splits its LRU list into a young and an old sublist; new pages
// enter at the midpoint (head of the old sublist, by default holding 3/8
// of the pages) and are promoted to the head of the young sublist when
// re-accessed. Promotion ("make young") requires the buffer-pool mutex —
// buf_pool_mutex_enter — and when the working set exceeds ~5/8 of the
// pool this mutex becomes the second-largest source of latency variance
// TProfiler finds in MySQL (32.92% under the 2-WH configuration).
//
// The paper's fix, Lazy LRU Update (LLU), replaces the mutex with a spin
// lock bounded to ~0.01ms: a thread that cannot acquire it in time defers
// the promotion to a per-thread backlog that is drained by the next
// successful acquirer. This package implements both policies behind
// UpdatePolicy so the fig. 3 (left) comparison is a one-line switch.
//
// Independent of the LRU policy, the pool is partitioned into
// Config.Shards instances (MySQL's innodb_buffer_pool_instances): each
// shard owns a slice of the page hash, its own LRU lists, its own
// capacity budget, and its own locks, so traffic to different pages
// rarely meets on a shared line. Within a shard, the page-hash *hit*
// path is lock-free: buckets are singly-linked chains published with
// atomic pointers, readers pin frames with a CAS that loses to a
// concurrent eviction (pins are tombstoned at -1 before a frame leaves
// the hash), and only the miss/create/evict paths take the shard mutex.
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vats/internal/disk"
	"vats/internal/latch"
	"vats/internal/obs"
)

// PageID names a page.
type PageID struct {
	Space uint32
	No    uint64
}

// String renders the page id.
func (p PageID) String() string { return fmt.Sprintf("%d/%d", p.Space, p.No) }

// UpdatePolicy selects how LRU promotions synchronize.
type UpdatePolicy int

const (
	// EagerLRU is the original MySQL behaviour: promotions block on the
	// buffer-pool mutex.
	EagerLRU UpdatePolicy = iota
	// LazyLRU is the paper's LLU: promotions spin briefly and defer to a
	// backlog on failure.
	LazyLRU
)

// String names the policy.
func (p UpdatePolicy) String() string {
	if p == LazyLRU {
		return "LazyLRU"
	}
	return "EagerLRU"
}

// Errors.
var (
	// ErrPageNotFound means the page was never created.
	ErrPageNotFound = errors.New("buffer: page not found")
	// ErrNoVictim means every page is pinned and nothing can be evicted.
	ErrNoVictim = errors.New("buffer: no evictable page")
	// ErrPageExists is returned by Create for an existing page.
	ErrPageExists = errors.New("buffer: page already exists")
)

// Config configures a Pool.
type Config struct {
	// Capacity is the number of page frames, summed over all shards.
	Capacity int
	// Shards is the number of buffer-pool instances the capacity is
	// split across (MySQL's innodb_buffer_pool_instances). Rounded up
	// to a power of two; 0 or 1 means a single instance, which keeps
	// the §6.1 single-mutex contention semantics the shape experiments
	// rely on. Shard counts that would leave a shard without a frame
	// are clamped down.
	Shards int
	// PageSize is the page size in bytes (default 4096).
	PageSize int
	// Device backs page reads and dirty write-backs; nil means a
	// zero-latency device.
	Device disk.Device
	// Policy selects Eager vs Lazy LRU updates.
	Policy UpdatePolicy
	// SpinWait bounds LLU's spin (default 10µs, the paper's 0.01ms).
	SpinWait time.Duration
	// OldFraction is the old sublist share (default 3/8, InnoDB's
	// innodb_old_blocks_pct=37).
	OldFraction float64
	// BacklogLimit caps each handle's deferred-promotion backlog
	// (default 64).
	BacklogLimit int
	// CriticalCost adds busy work inside the LRU critical section
	// (promotion and eviction), modelling the multi-core list
	// maintenance and cache-line cost the paper's buf_pool_mutex_enter
	// study observed on an 8-core server. On a single-core simulation
	// host the raw list splice is nanoseconds, which would hide the
	// pathology entirely. Zero disables it.
	CriticalCost time.Duration
	// Obs receives live metrics (hit/miss/eviction counters, LRU-lock
	// hold-time histogram, labelled by LRU policy); nil collects
	// nothing.
	Obs *obs.Obs
}

// Stats reports pool activity, merged across shards.
type Stats struct {
	Hits         int64
	Misses       int64
	Evictions    int64
	WriteBacks   int64
	MakeYoungs   int64
	Deferred     int64 // promotions pushed to a backlog (LLU)
	Drained      int64 // backlog entries later applied
	DroppedDefer int64 // backlog entries dropped (full or evicted)
	// Mutex is the eager-mode buffer-pool mutex contention profile,
	// summed over shards (MaxWait is the max across shards).
	Mutex latch.MutexStats
}

// pinTomb marks a frame claimed by eviction: once pins CAS from 0 to
// pinTomb the frame can never be pinned again, so lock-free readers that
// raced the evictor fail their pin and retry through the miss path.
const pinTomb = -1

type frame struct {
	id    PageID
	data  []byte
	shard *shard

	// hashNext chains frames in a page-hash bucket. Written only under
	// the shard mutex; read lock-free by the hit path.
	hashNext atomic.Pointer[frame]

	// pins counts references. 0 = unpinned, >0 = pinned, pinTomb =
	// evicted. Readers pin with a CAS loop (tryPin); eviction claims a
	// frame with CAS(0, pinTomb).
	pins      atomic.Int32
	dirty     atomic.Bool
	ioPending atomic.Bool // set under the shard mutex; cleared with Broadcast

	// pageMu guards the page contents for writers (the storage layer's
	// page latch).
	pageMu sync.Mutex

	// LRU fields, guarded by the shard's LRU lock; inOld and moveGen are
	// atomics so the hit fast path can read them without the lock.
	prev, next *frame
	inList     bool
	inOld      atomic.Bool
	moveGen    atomic.Uint64
}

// tryPin pins the frame unless eviction already claimed it.
func (f *frame) tryPin() bool {
	for {
		pc := f.pins.Load()
		if pc < 0 {
			return false
		}
		if f.pins.CompareAndSwap(pc, pc+1) {
			return true
		}
	}
}

// Frame is a pinned page handle returned by Fetch/Create. It is a small
// value (no allocation per fetch). Call Release when done; use
// WithPageLock (or Latch/Unlatch) around mutations.
type Frame struct {
	f *frame
}

// ID returns the page id.
func (fr Frame) ID() PageID { return fr.f.id }

// Data returns the page contents. Readers may access it while pinned;
// writers must hold the page lock (WithPageLock) and call MarkDirty.
func (fr Frame) Data() []byte { return fr.f.data }

// MarkDirty flags the page for write-back on eviction.
func (fr Frame) MarkDirty() { fr.f.dirty.Store(true) }

// WithPageLock runs fn with the per-page latch held.
func (fr Frame) WithPageLock(fn func()) {
	fr.f.pageMu.Lock()
	defer fr.f.pageMu.Unlock()
	fn()
}

// Latch acquires the per-page latch without a closure; pair with
// Unlatch. The read hot path uses it to stay allocation-free.
func (fr Frame) Latch() { fr.f.pageMu.Lock() }

// Unlatch releases the per-page latch.
func (fr Frame) Unlatch() { fr.f.pageMu.Unlock() }

// Release unpins the page.
func (fr Frame) Release() {
	if fr.f.pins.Add(-1) < 0 {
		panic("buffer: unpin of unpinned page")
	}
}

// shard is one buffer-pool instance: a slice of the page hash with its
// own LRU lists, capacity budget, backing store, and locks.
type shard struct {
	pool     *Pool
	capacity int

	// Page hash. Readers traverse bucket chains lock-free; all writes
	// to the chains happen under mu.
	buckets    []atomic.Pointer[frame]
	bucketMask uint64

	mu       sync.Mutex // guards hash membership, ioPending transitions
	ioCond   *sync.Cond
	resident int // frames in the hash, guarded by mu

	// Backing store: page images "on disk".
	storeMu sync.Mutex
	store   map[PageID][]byte

	// The buffer-pool "mutex" guarding the LRU list, in one of two
	// flavours depending on the policy.
	lruEager latch.CountingMutex
	lruLazy  latch.SpinLock

	// LRU list state, guarded by the LRU lock.
	head, tail *frame
	oldHead    *frame
	total      int
	oldCount   int

	gen atomic.Uint64

	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
	writeBacks atomic.Int64
	makeYoungs atomic.Int64
	deferred   atomic.Int64
	drained    atomic.Int64
	dropped    atomic.Int64
}

// Pool is the buffer pool: Config.Shards independent instances behind
// one façade.
type Pool struct {
	cfg       Config
	dev       disk.Device
	met       *obs.BufferMetrics
	shards    []*shard
	shardMask uint64
}

// shardHashBits is how many low hash bits select the shard; bucket
// selection uses the bits above so the two choices stay independent.
const shardHashBits = 12

// hashPageID mixes a PageID into a well-spread 64-bit hash
// (splitmix64-style finalizer).
func hashPageID(id PageID) uint64 {
	h := id.No*0x9E3779B97F4A7C15 ^ uint64(id.Space)*0xC2B2AE3D27D4EB4F
	h ^= h >> 29
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 32
	return h
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// NewPool builds a pool from cfg.
func NewPool(cfg Config) *Pool {
	if cfg.Capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	if cfg.SpinWait <= 0 {
		cfg.SpinWait = 10 * time.Microsecond
	}
	if cfg.OldFraction <= 0 || cfg.OldFraction >= 1 {
		cfg.OldFraction = 3.0 / 8.0
	}
	if cfg.BacklogLimit <= 0 {
		cfg.BacklogLimit = 64
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	cfg.Shards = nextPow2(cfg.Shards)
	if max := 1 << shardHashBits; cfg.Shards > max {
		cfg.Shards = max
	}
	for cfg.Shards > 1 && cfg.Capacity/cfg.Shards < 1 {
		cfg.Shards >>= 1
	}
	p := &Pool{
		cfg:       cfg,
		dev:       cfg.Device,
		met:       obs.NewBufferMetrics(cfg.Obs, cfg.Policy.String()),
		shards:    make([]*shard, cfg.Shards),
		shardMask: uint64(cfg.Shards - 1),
	}
	base, extra := cfg.Capacity/cfg.Shards, cfg.Capacity%cfg.Shards
	for i := range p.shards {
		capi := base
		if i < extra {
			capi++
		}
		nb := nextPow2(2 * capi)
		if nb < 8 {
			nb = 8
		}
		s := &shard{
			pool:       p,
			capacity:   capi,
			buckets:    make([]atomic.Pointer[frame], nb),
			bucketMask: uint64(nb - 1),
			store:      make(map[PageID][]byte),
		}
		s.ioCond = sync.NewCond(&s.mu)
		p.shards[i] = s
	}
	return p
}

// shardFor routes a page to its shard and bucket index.
func (p *Pool) shardFor(id PageID) (*shard, uint64) {
	h := hashPageID(id)
	s := p.shards[h&p.shardMask]
	return s, (h >> shardHashBits) & s.bucketMask
}

// Capacity returns the frame capacity summed over shards.
func (p *Pool) Capacity() int { return p.cfg.Capacity }

// Shards returns the number of buffer-pool instances.
func (p *Pool) Shards() int { return len(p.shards) }

// PageSize returns the page size in bytes.
func (p *Pool) PageSize() int { return p.cfg.PageSize }

// Handle is a per-worker accessor holding the LLU deferred-promotion
// backlog. Handles are not safe for concurrent use; give each goroutine
// its own (the paper's backlog is thread-local).
type Handle struct {
	pool    *Pool
	backlog []*frame

	// Wait accounting for the caller's profiler: time spent waiting on
	// the buffer-pool (LRU) lock and on device I/O since TakeWaits.
	// Hit-path promotion waits are only timed when trackWaits is set,
	// keeping timer syscalls off the hot path for profiler-less callers.
	trackWaits bool
	lruWait    time.Duration
	ioWait     time.Duration
}

// SetWaitTracking enables hit-path LRU wait timing for this handle. The
// engine turns it on when a profiler wants buf_pool_mutex_enter
// attribution; without it the hit path skips the clock reads.
func (h *Handle) SetWaitTracking(on bool) { h.trackWaits = on }

// TakeWaits returns and resets the LRU-lock and device-I/O wait time
// accumulated by this handle's operations. The engine records these as
// the buf_pool_mutex_enter and fil_flush-style profiler leaves.
func (h *Handle) TakeWaits() (lru, io time.Duration) {
	lru, io = h.lruWait, h.ioWait
	h.lruWait, h.ioWait = 0, 0
	return lru, io
}

// NewHandle returns a worker-local handle.
func (p *Pool) NewHandle() *Handle { return &Handle{pool: p} }

// lruLock / lruUnlock wrap whichever primitive the policy uses for
// unconditional acquisition (miss path, eviction).
func (s *shard) lruLock() {
	if s.pool.cfg.Policy == LazyLRU {
		s.lruLazy.Lock()
	} else {
		s.lruEager.Lock()
	}
}

func (s *shard) lruUnlock() {
	if s.pool.cfg.Policy == LazyLRU {
		s.lruLazy.Unlock()
	} else {
		s.lruEager.Unlock()
	}
}

// lookupLocked finds id in the shard's page hash. Caller holds s.mu.
func (s *shard) lookupLocked(bucket uint64, id PageID) *frame {
	for f := s.buckets[bucket].Load(); f != nil; f = f.hashNext.Load() {
		if f.id == id {
			return f
		}
	}
	return nil
}

// hashInsertLocked publishes f at the head of its bucket chain. Caller
// holds s.mu.
func (s *shard) hashInsertLocked(bucket uint64, f *frame) {
	b := &s.buckets[bucket]
	f.hashNext.Store(b.Load())
	b.Store(f)
	s.resident++
}

// hashRemoveLocked unlinks f from its bucket chain. Caller holds s.mu.
// f's own hashNext is left intact so a lock-free reader standing on f
// can finish its traversal.
func (s *shard) hashRemoveLocked(bucket uint64, f *frame) {
	b := &s.buckets[bucket]
	var prev *frame
	for cur := b.Load(); cur != nil; cur = cur.hashNext.Load() {
		if cur == f {
			next := f.hashNext.Load()
			if prev == nil {
				b.Store(next)
			} else {
				prev.hashNext.Store(next)
			}
			s.resident--
			return
		}
		prev = cur
	}
}

// Create allocates a new zeroed page, evicting if necessary. The page is
// returned pinned and dirty.
func (p *Pool) Create(id PageID) (Frame, error) {
	s, bucket := p.shardFor(id)
	s.storeMu.Lock()
	if _, ok := s.store[id]; ok {
		s.storeMu.Unlock()
		return Frame{}, ErrPageExists
	}
	s.store[id] = nil // reserve; image written on eviction/flush
	s.storeMu.Unlock()

	s.mu.Lock()
	if s.lookupLocked(bucket, id) != nil {
		s.mu.Unlock()
		return Frame{}, ErrPageExists
	}
	f, victim, err := s.installLocked(bucket, id)
	if err != nil {
		s.mu.Unlock()
		s.storeMu.Lock()
		delete(s.store, id) // release the reservation
		s.storeMu.Unlock()
		return Frame{}, err
	}
	f.ioPending.Store(false) // no read needed for a fresh page
	f.dirty.Store(true)
	s.mu.Unlock()
	s.ioCond.Broadcast()

	s.writeBackVictim(victim)
	return Frame{f}, nil
}

// Fetch pins page id, reading it from the backing store on a miss. The
// Handle's policy applies LRU promotion on hits. The hit path is
// lock-free: a bucket-chain probe plus a pin CAS.
func (h *Handle) Fetch(id PageID) (Frame, error) {
	p := h.pool
	hash := hashPageID(id)
	s := p.shards[hash&p.shardMask]
	bucket := (hash >> shardHashBits) & s.bucketMask
	for f := s.buckets[bucket].Load(); f != nil; f = f.hashNext.Load() {
		if f.id != id {
			continue
		}
		if !f.tryPin() {
			break // lost to a concurrent eviction; resolve under the lock
		}
		if f.ioPending.Load() {
			s.mu.Lock()
			for f.ioPending.Load() {
				s.ioCond.Wait()
			}
			s.mu.Unlock()
		}
		s.hits.Add(1)
		p.met.Hit()
		h.touch(f)
		return Frame{f}, nil
	}
	return h.fetchSlow(s, bucket, id)
}

// fetchSlow resolves a probe miss under the shard mutex: either the page
// appeared concurrently (hit after all) or it must be read from the
// backing store into a fresh frame.
func (h *Handle) fetchSlow(s *shard, bucket uint64, id PageID) (Frame, error) {
	p := h.pool
	s.mu.Lock()
	if f := s.lookupLocked(bucket, id); f != nil {
		// Frames in the hash can't be tombstoned while we hold s.mu, so
		// the pin only races other pinners and must eventually land.
		if !f.tryPin() {
			panic("buffer: evicted frame still in page hash")
		}
		for f.ioPending.Load() {
			s.ioCond.Wait()
		}
		s.mu.Unlock()
		s.hits.Add(1)
		p.met.Hit()
		h.touch(f)
		return Frame{f}, nil
	}

	// Miss.
	s.storeMu.Lock()
	img, ok := s.store[id]
	s.storeMu.Unlock()
	if !ok {
		s.mu.Unlock()
		return Frame{}, ErrPageNotFound
	}
	lruStart := time.Now()
	f, victim, err := s.installLocked(bucket, id)
	if err != nil {
		s.mu.Unlock()
		return Frame{}, err
	}
	h.lruWait += time.Since(lruStart)
	s.mu.Unlock()
	s.misses.Add(1)
	p.met.Miss()

	ioStart := time.Now()
	s.writeBackVictim(victim)
	if p.dev != nil {
		p.dev.ReadBlock()
	}
	h.ioWait += time.Since(ioStart)
	copy(f.data, img)

	s.mu.Lock()
	f.ioPending.Store(false)
	s.mu.Unlock()
	s.ioCond.Broadcast()
	return Frame{f}, nil
}

// installLocked allocates a pinned, io-pending frame for id at the LRU
// midpoint, evicting a victim if the shard is full. Caller holds s.mu.
// The returned victim (possibly nil) must be passed to writeBackVictim
// after releasing s.mu.
func (s *shard) installLocked(bucket uint64, id PageID) (*frame, *frame, error) {
	var victim *frame
	s.lruLock()
	var holdStart time.Time
	if s.pool.met.HoldEnabled() {
		holdStart = time.Now()
	}
	if s.total >= s.capacity {
		victim = s.claimVictimLocked()
		if victim == nil {
			s.lruUnlock()
			return nil, nil, ErrNoVictim
		}
		s.spinCost()
		s.unlinkLocked(victim)
		s.hashRemoveLocked((hashPageID(victim.id)>>shardHashBits)&s.bucketMask, victim)
		s.evictions.Add(1)
		s.pool.met.Evicted()
		if victim.dirty.Load() {
			// Publish the image to the backing store *before* the page
			// leaves the hash, so a concurrent re-fetch cannot read a
			// stale image. The device latency is paid by the evicting
			// thread afterwards (writeBackVictim).
			img := make([]byte, len(victim.data))
			victim.pageMu.Lock()
			copy(img, victim.data)
			victim.pageMu.Unlock()
			s.storeMu.Lock()
			s.store[victim.id] = img
			s.storeMu.Unlock()
		}
	}
	f := &frame{id: id, data: make([]byte, s.pool.cfg.PageSize), shard: s}
	f.ioPending.Store(true)
	f.pins.Store(1)
	s.insertAtMidpointLocked(f)
	if !holdStart.IsZero() {
		s.pool.met.Held(time.Since(holdStart))
	}
	s.lruUnlock()
	s.hashInsertLocked(bucket, f)
	return f, victim, nil
}

// writeBackVictim charges the evicting thread the device write for a
// dirty victim. The image itself was already published to the backing
// store under the shard lock (see installLocked).
func (s *shard) writeBackVictim(victim *frame) {
	if victim == nil || !victim.dirty.Load() {
		return
	}
	if s.pool.dev != nil {
		s.pool.dev.WriteBlock()
	}
	s.writeBacks.Add(1)
	s.pool.met.WroteBack()
}

// touch applies the LRU promotion policy to a hit frame.
func (h *Handle) touch(f *frame) {
	s := f.shard
	// Fast path: recently-promoted young pages are not reordered (the
	// "MySQL does not maintain precise LRU ordering within the young
	// list" rule), so a well-sized shard rarely touches the LRU lock.
	if !f.inOld.Load() {
		skip := uint64(s.capacity / 4)
		if s.gen.Load()-f.moveGen.Load() <= skip {
			return
		}
	}
	p := s.pool
	if p.cfg.Policy == EagerLRU {
		var start time.Time
		if h.trackWaits {
			start = time.Now()
		}
		s.lruEager.Lock()
		var acq time.Time
		if h.trackWaits || p.met.HoldEnabled() {
			acq = time.Now()
		}
		if h.trackWaits {
			h.lruWait += acq.Sub(start)
		}
		s.makeYoungLocked(f)
		if p.met.HoldEnabled() && !acq.IsZero() {
			p.met.Held(time.Since(acq))
		}
		s.lruEager.Unlock()
		return
	}
	// LLU: bounded spin; defer on failure.
	var start time.Time
	if h.trackWaits {
		start = time.Now()
	}
	acquired := s.lruLazy.TryLockFor(p.cfg.SpinWait)
	if h.trackWaits {
		h.lruWait += time.Since(start)
	}
	if acquired {
		var acq time.Time
		if p.met.HoldEnabled() {
			acq = time.Now()
		}
		h.drainBacklogLocked(s)
		s.makeYoungLocked(f)
		if !acq.IsZero() {
			p.met.Held(time.Since(acq))
		}
		s.lruLazy.Unlock()
		return
	}
	s.deferred.Add(1)
	p.met.Deferred()
	if len(h.backlog) >= p.cfg.BacklogLimit {
		s.dropped.Add(1)
		copy(h.backlog, h.backlog[1:])
		h.backlog = h.backlog[:len(h.backlog)-1]
	}
	h.backlog = append(h.backlog, f)
}

// drainBacklogLocked applies deferred promotions belonging to shard s;
// caller holds s's lazy LRU lock. Entries for other shards stay queued
// until one of their promotions takes that shard's lock.
func (h *Handle) drainBacklogLocked(s *shard) {
	// The batch pays the critical-section cost once: deferred
	// promotions are applied together with good locality, which is the
	// point of batching them.
	charged := false
	kept := h.backlog[:0]
	for _, f := range h.backlog {
		if f.shard != s {
			kept = append(kept, f)
			continue
		}
		if f.inList { // "after confirming they have not been evicted"
			s.makeYoungCosted(f, !charged)
			charged = true
			s.drained.Add(1)
		} else {
			s.dropped.Add(1)
		}
	}
	h.backlog = kept
}

// --- LRU list internals. All guarded by the shard's LRU lock. ---

// spinCost charges the configured critical-section cost while a lock is
// held. The cost is charged as wall time (sleep): on a single-CPU
// simulation host a busy-wait holder would never be preempted, so no
// contention could form; sleeping keeps the lock held while other
// workers genuinely queue on it, as they do on the paper's 8-core
// server.
func (s *shard) spinCost() {
	if s.pool.cfg.CriticalCost <= 0 {
		return
	}
	time.Sleep(s.pool.cfg.CriticalCost)
}

func (s *shard) makeYoungLocked(f *frame) {
	s.makeYoungCosted(f, true)
}

func (s *shard) makeYoungCosted(f *frame, charge bool) {
	if !f.inList {
		return
	}
	if charge {
		s.spinCost()
	}
	s.unlinkLocked(f)
	// Insert at head of young list.
	f.prev = nil
	f.next = s.head
	if s.head != nil {
		s.head.prev = f
	}
	s.head = f
	if s.tail == nil {
		s.tail = f
	}
	f.inList = true
	f.inOld.Store(false)
	s.total++
	f.moveGen.Store(s.gen.Add(1))
	s.makeYoungs.Add(1)
	s.rebalanceLocked()
}

// insertAtMidpointLocked puts f at the head of the old sublist.
func (s *shard) insertAtMidpointLocked(f *frame) {
	if s.oldHead == nil {
		// Old list empty: append at tail.
		f.prev = s.tail
		f.next = nil
		if s.tail != nil {
			s.tail.next = f
		}
		s.tail = f
		if s.head == nil {
			s.head = f
		}
	} else {
		f.prev = s.oldHead.prev
		f.next = s.oldHead
		if s.oldHead.prev != nil {
			s.oldHead.prev.next = f
		} else {
			s.head = f
		}
		s.oldHead.prev = f
	}
	s.oldHead = f
	f.inList = true
	f.inOld.Store(true)
	f.moveGen.Store(s.gen.Load())
	s.total++
	s.oldCount++
	s.rebalanceLocked()
}

func (s *shard) unlinkLocked(f *frame) {
	if !f.inList {
		return
	}
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		s.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		s.tail = f.prev
	}
	if s.oldHead == f {
		s.oldHead = f.next // next toward tail stays old (or nil)
	}
	if f.inOld.Load() {
		s.oldCount--
	}
	s.total--
	f.inList = false
	f.prev, f.next = nil, nil
}

// rebalanceLocked maintains oldCount ≈ OldFraction * total by moving the
// young/old boundary.
func (s *shard) rebalanceLocked() {
	target := int(float64(s.total) * s.pool.cfg.OldFraction)
	for s.oldCount < target {
		// Grow old: the youngest-list tail page becomes old.
		var cand *frame
		if s.oldHead != nil {
			cand = s.oldHead.prev
		} else {
			cand = s.tail
		}
		if cand == nil || cand.inOld.Load() {
			break
		}
		cand.inOld.Store(true)
		s.oldHead = cand
		s.oldCount++
	}
	for s.oldCount > target+1 && s.oldHead != nil {
		// Shrink old: promote the old head to young.
		f := s.oldHead
		f.inOld.Store(false)
		s.oldHead = f.next
		s.oldCount--
	}
}

// claimVictimLocked scans from the tail (the coldest old page) for an
// unpinned, io-complete frame and claims it with a pin tombstone so no
// lock-free reader can pin it afterwards.
func (s *shard) claimVictimLocked() *frame {
	for f := s.tail; f != nil; f = f.prev {
		if f.ioPending.Load() {
			continue
		}
		if f.pins.CompareAndSwap(0, pinTomb) {
			return f
		}
	}
	return nil
}

// FlushAll writes every dirty resident page to the backing store (a
// checkpoint). Pages stay resident.
func (p *Pool) FlushAll() {
	for _, s := range p.shards {
		s.mu.Lock()
		frames := make([]*frame, 0, s.resident)
		for i := range s.buckets {
			for f := s.buckets[i].Load(); f != nil; f = f.hashNext.Load() {
				frames = append(frames, f)
			}
		}
		s.mu.Unlock()
		for _, f := range frames {
			if !f.dirty.Load() {
				continue
			}
			if p.dev != nil {
				p.dev.WriteBlock()
			}
			img := make([]byte, len(f.data))
			f.pageMu.Lock()
			copy(img, f.data)
			f.dirty.Store(false)
			f.pageMu.Unlock()
			s.storeMu.Lock()
			s.store[f.id] = img
			s.storeMu.Unlock()
			s.writeBacks.Add(1)
		}
	}
}

// Resident returns the number of pages currently in the pool.
func (p *Pool) Resident() int {
	n := 0
	for _, s := range p.shards {
		s.mu.Lock()
		n += s.resident
		s.mu.Unlock()
	}
	return n
}

// OldLen returns the old-sublist length summed over shards (for
// invariant tests).
func (p *Pool) OldLen() int {
	n := 0
	for _, s := range p.shards {
		s.lruLock()
		n += s.oldCount
		s.lruUnlock()
	}
	return n
}

// listLen walks the LRU lists under the shard LRU locks (for invariant
// tests).
func (p *Pool) listLen() int {
	n := 0
	for _, s := range p.shards {
		s.lruLock()
		for f := s.head; f != nil; f = f.next {
			n++
		}
		s.lruUnlock()
	}
	return n
}

// shardCapacities returns each shard's frame budget (for invariant
// tests).
func (p *Pool) shardCapacities() []int {
	caps := make([]int, len(p.shards))
	for i, s := range p.shards {
		caps[i] = s.capacity
	}
	return caps
}

// Stats returns a snapshot of counters merged across shards.
func (p *Pool) Stats() Stats {
	var st Stats
	for _, s := range p.shards {
		st.Hits += s.hits.Load()
		st.Misses += s.misses.Load()
		st.Evictions += s.evictions.Load()
		st.WriteBacks += s.writeBacks.Load()
		st.MakeYoungs += s.makeYoungs.Load()
		st.Deferred += s.deferred.Load()
		st.Drained += s.drained.Load()
		st.DroppedDefer += s.dropped.Load()
		ms := s.lruEager.Stats()
		st.Mutex.Acquires += ms.Acquires
		st.Mutex.Contended += ms.Contended
		st.Mutex.WaitTime += ms.WaitTime
		if ms.MaxWait > st.Mutex.MaxWait {
			st.Mutex.MaxWait = ms.MaxWait
		}
	}
	return st
}
