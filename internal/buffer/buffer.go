// Package buffer implements the buffer pool: a fixed-capacity page cache
// with InnoDB's young/old midpoint LRU (§6.1 of the paper), backed by a
// simulated disk.
//
// MySQL splits its LRU list into a young and an old sublist; new pages
// enter at the midpoint (head of the old sublist, by default holding 3/8
// of the pages) and are promoted to the head of the young sublist when
// re-accessed. Promotion ("make young") requires the buffer-pool mutex —
// buf_pool_mutex_enter — and when the working set exceeds ~5/8 of the
// pool this mutex becomes the second-largest source of latency variance
// TProfiler finds in MySQL (32.92% under the 2-WH configuration).
//
// The paper's fix, Lazy LRU Update (LLU), replaces the mutex with a spin
// lock bounded to ~0.01ms: a thread that cannot acquire it in time defers
// the promotion to a per-thread backlog that is drained by the next
// successful acquirer. This package implements both policies behind
// UpdatePolicy so the fig. 3 (left) comparison is a one-line switch.
package buffer

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vats/internal/disk"
	"vats/internal/latch"
	"vats/internal/obs"
)

// PageID names a page.
type PageID struct {
	Space uint32
	No    uint64
}

// String renders the page id.
func (p PageID) String() string { return fmt.Sprintf("%d/%d", p.Space, p.No) }

// UpdatePolicy selects how LRU promotions synchronize.
type UpdatePolicy int

const (
	// EagerLRU is the original MySQL behaviour: promotions block on the
	// buffer-pool mutex.
	EagerLRU UpdatePolicy = iota
	// LazyLRU is the paper's LLU: promotions spin briefly and defer to a
	// backlog on failure.
	LazyLRU
)

// String names the policy.
func (p UpdatePolicy) String() string {
	if p == LazyLRU {
		return "LazyLRU"
	}
	return "EagerLRU"
}

// Errors.
var (
	// ErrPageNotFound means the page was never created.
	ErrPageNotFound = errors.New("buffer: page not found")
	// ErrNoVictim means every page is pinned and nothing can be evicted.
	ErrNoVictim = errors.New("buffer: no evictable page")
	// ErrPageExists is returned by Create for an existing page.
	ErrPageExists = errors.New("buffer: page already exists")
)

// Config configures a Pool.
type Config struct {
	// Capacity is the number of page frames.
	Capacity int
	// PageSize is the page size in bytes (default 4096).
	PageSize int
	// Device backs page reads and dirty write-backs; nil means a
	// zero-latency device.
	Device *disk.Device
	// Policy selects Eager vs Lazy LRU updates.
	Policy UpdatePolicy
	// SpinWait bounds LLU's spin (default 10µs, the paper's 0.01ms).
	SpinWait time.Duration
	// OldFraction is the old sublist share (default 3/8, InnoDB's
	// innodb_old_blocks_pct=37).
	OldFraction float64
	// BacklogLimit caps each handle's deferred-promotion backlog
	// (default 64).
	BacklogLimit int
	// CriticalCost adds busy work inside the LRU critical section
	// (promotion and eviction), modelling the multi-core list
	// maintenance and cache-line cost the paper's buf_pool_mutex_enter
	// study observed on an 8-core server. On a single-core simulation
	// host the raw list splice is nanoseconds, which would hide the
	// pathology entirely. Zero disables it.
	CriticalCost time.Duration
	// Obs receives live metrics (hit/miss/eviction counters, LRU-lock
	// hold-time histogram, labelled by LRU policy); nil collects
	// nothing.
	Obs *obs.Obs
}

// Stats reports pool activity.
type Stats struct {
	Hits         int64
	Misses       int64
	Evictions    int64
	WriteBacks   int64
	MakeYoungs   int64
	Deferred     int64 // promotions pushed to a backlog (LLU)
	Drained      int64 // backlog entries later applied
	DroppedDefer int64 // backlog entries dropped (full or evicted)
	// Mutex is the eager-mode buffer-pool mutex contention profile.
	Mutex latch.MutexStats
}

type frame struct {
	id   PageID
	data []byte

	pins      atomic.Int32
	dirty     atomic.Bool
	ioPending bool // guarded by Pool.tableMu

	// pageMu guards the page contents for writers (the storage layer's
	// page latch).
	pageMu sync.Mutex

	// LRU fields, guarded by the pool's LRU lock; inOld and moveGen are
	// atomics so the hit fast path can read them without the lock.
	prev, next *frame
	inList     bool
	inOld      atomic.Bool
	moveGen    atomic.Uint64
}

// Frame is a pinned page handle returned by Fetch/Create. Call Release
// when done; use WithPageLock around mutations.
type Frame struct {
	f    *frame
	pool *Pool
}

// ID returns the page id.
func (fr *Frame) ID() PageID { return fr.f.id }

// Data returns the page contents. Readers may access it while pinned;
// writers must hold the page lock (WithPageLock) and call MarkDirty.
func (fr *Frame) Data() []byte { return fr.f.data }

// MarkDirty flags the page for write-back on eviction.
func (fr *Frame) MarkDirty() { fr.f.dirty.Store(true) }

// WithPageLock runs fn with the per-page latch held.
func (fr *Frame) WithPageLock(fn func()) {
	fr.f.pageMu.Lock()
	defer fr.f.pageMu.Unlock()
	fn()
}

// Release unpins the page.
func (fr *Frame) Release() {
	if fr.f.pins.Add(-1) < 0 {
		panic("buffer: unpin of unpinned page")
	}
}

// Pool is the buffer pool.
type Pool struct {
	cfg Config
	dev *disk.Device

	tableMu sync.Mutex
	ioCond  *sync.Cond
	table   map[PageID]*frame

	// Backing store: page images "on disk".
	storeMu sync.Mutex
	store   map[PageID][]byte

	// The buffer-pool "mutex" guarding the LRU list, in one of two
	// flavours depending on the policy.
	lruEager latch.CountingMutex
	lruLazy  latch.SpinLock

	// LRU list state, guarded by the LRU lock.
	head, tail *frame
	oldHead    *frame
	total      int
	oldCount   int

	gen atomic.Uint64

	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
	writeBacks atomic.Int64
	makeYoungs atomic.Int64
	deferred   atomic.Int64
	drained    atomic.Int64
	dropped    atomic.Int64

	met *obs.BufferMetrics
}

// NewPool builds a pool from cfg.
func NewPool(cfg Config) *Pool {
	if cfg.Capacity <= 0 {
		panic("buffer: capacity must be positive")
	}
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	if cfg.SpinWait <= 0 {
		cfg.SpinWait = 10 * time.Microsecond
	}
	if cfg.OldFraction <= 0 || cfg.OldFraction >= 1 {
		cfg.OldFraction = 3.0 / 8.0
	}
	if cfg.BacklogLimit <= 0 {
		cfg.BacklogLimit = 64
	}
	p := &Pool{
		cfg:   cfg,
		dev:   cfg.Device,
		table: make(map[PageID]*frame, cfg.Capacity),
		store: make(map[PageID][]byte),
		met:   obs.NewBufferMetrics(cfg.Obs, cfg.Policy.String()),
	}
	p.ioCond = sync.NewCond(&p.tableMu)
	return p
}

// Capacity returns the frame capacity.
func (p *Pool) Capacity() int { return p.cfg.Capacity }

// PageSize returns the page size in bytes.
func (p *Pool) PageSize() int { return p.cfg.PageSize }

// Handle is a per-worker accessor holding the LLU deferred-promotion
// backlog. Handles are not safe for concurrent use; give each goroutine
// its own (the paper's backlog is thread-local).
type Handle struct {
	pool    *Pool
	backlog []*frame

	// Wait accounting for the caller's profiler: time spent waiting on
	// the buffer-pool (LRU) lock and on device I/O since TakeWaits.
	lruWait time.Duration
	ioWait  time.Duration
}

// TakeWaits returns and resets the LRU-lock and device-I/O wait time
// accumulated by this handle's operations. The engine records these as
// the buf_pool_mutex_enter and fil_flush-style profiler leaves.
func (h *Handle) TakeWaits() (lru, io time.Duration) {
	lru, io = h.lruWait, h.ioWait
	h.lruWait, h.ioWait = 0, 0
	return lru, io
}

// NewHandle returns a worker-local handle.
func (p *Pool) NewHandle() *Handle { return &Handle{pool: p} }

// lruLock / lruUnlock wrap whichever primitive the policy uses for
// unconditional acquisition (miss path, eviction).
func (p *Pool) lruLock() {
	if p.cfg.Policy == LazyLRU {
		p.lruLazy.Lock()
	} else {
		p.lruEager.Lock()
	}
}

func (p *Pool) lruUnlock() {
	if p.cfg.Policy == LazyLRU {
		p.lruLazy.Unlock()
	} else {
		p.lruEager.Unlock()
	}
}

// Create allocates a new zeroed page, evicting if necessary. The page is
// returned pinned and dirty.
func (p *Pool) Create(id PageID) (*Frame, error) {
	p.storeMu.Lock()
	if _, ok := p.store[id]; ok {
		p.storeMu.Unlock()
		return nil, ErrPageExists
	}
	p.store[id] = nil // reserve; image written on eviction/flush
	p.storeMu.Unlock()

	p.tableMu.Lock()
	if _, ok := p.table[id]; ok {
		p.tableMu.Unlock()
		return nil, ErrPageExists
	}
	f, victim, err := p.installLocked(id)
	if err != nil {
		p.tableMu.Unlock()
		p.storeMu.Lock()
		delete(p.store, id) // release the reservation
		p.storeMu.Unlock()
		return nil, err
	}
	f.ioPending = false // no read needed for a fresh page
	f.dirty.Store(true)
	p.tableMu.Unlock()
	p.ioCond.Broadcast()

	p.writeBackVictim(victim)
	return &Frame{f: f, pool: p}, nil
}

// Fetch pins page id, reading it from the backing store on a miss. The
// Handle's policy applies LRU promotion on hits.
func (h *Handle) Fetch(id PageID) (*Frame, error) {
	p := h.pool
	p.tableMu.Lock()
	if f, ok := p.table[id]; ok {
		f.pins.Add(1)
		for f.ioPending {
			p.ioCond.Wait()
		}
		// The frame may have been evicted while we waited? No: pins>0
		// prevents eviction, and we pinned before waiting.
		p.tableMu.Unlock()
		p.hits.Add(1)
		p.met.Hit()
		h.touch(f)
		return &Frame{f: f, pool: p}, nil
	}

	// Miss.
	p.storeMu.Lock()
	img, ok := p.store[id]
	p.storeMu.Unlock()
	if !ok {
		p.tableMu.Unlock()
		return nil, ErrPageNotFound
	}
	lruStart := time.Now()
	f, victim, err := p.installLocked(id)
	if err != nil {
		p.tableMu.Unlock()
		return nil, err
	}
	h.lruWait += time.Since(lruStart)
	p.tableMu.Unlock()
	p.misses.Add(1)
	p.met.Miss()

	ioStart := time.Now()
	p.writeBackVictim(victim)
	if p.dev != nil {
		p.dev.ReadBlock()
	}
	h.ioWait += time.Since(ioStart)
	copy(f.data, img)

	p.tableMu.Lock()
	f.ioPending = false
	p.tableMu.Unlock()
	p.ioCond.Broadcast()
	return &Frame{f: f, pool: p}, nil
}

// installLocked allocates a pinned, io-pending frame for id at the LRU
// midpoint, evicting a victim if the pool is full. Caller holds tableMu.
// The returned victim (possibly nil) must be passed to writeBackVictim
// after releasing tableMu.
func (p *Pool) installLocked(id PageID) (*frame, *frame, error) {
	var victim *frame
	p.lruLock()
	var holdStart time.Time
	if p.met.HoldEnabled() {
		holdStart = time.Now()
	}
	if p.total >= p.cfg.Capacity {
		victim = p.pickVictimLocked()
		if victim == nil {
			p.lruUnlock()
			return nil, nil, ErrNoVictim
		}
		p.spinCost()
		p.unlinkLocked(victim)
		delete(p.table, victim.id)
		p.evictions.Add(1)
		p.met.Evicted()
		if victim.dirty.Load() {
			// Publish the image to the backing store *before* the page
			// leaves the table, so a concurrent re-fetch cannot read a
			// stale image. The device latency is paid by the evicting
			// thread afterwards (writeBackVictim).
			img := make([]byte, len(victim.data))
			victim.pageMu.Lock()
			copy(img, victim.data)
			victim.pageMu.Unlock()
			p.storeMu.Lock()
			p.store[victim.id] = img
			p.storeMu.Unlock()
		}
	}
	f := &frame{id: id, data: make([]byte, p.cfg.PageSize), ioPending: true}
	f.pins.Store(1)
	p.insertAtMidpointLocked(f)
	if !holdStart.IsZero() {
		p.met.Held(time.Since(holdStart))
	}
	p.lruUnlock()
	p.table[id] = f
	return f, victim, nil
}

// writeBackVictim charges the evicting thread the device write for a
// dirty victim. The image itself was already published to the backing
// store under the table lock (see installLocked).
func (p *Pool) writeBackVictim(victim *frame) {
	if victim == nil || !victim.dirty.Load() {
		return
	}
	if p.dev != nil {
		p.dev.WriteBlock()
	}
	p.writeBacks.Add(1)
	p.met.WroteBack()
}

// touch applies the LRU promotion policy to a hit frame.
func (h *Handle) touch(f *frame) {
	p := h.pool
	// Fast path: recently-promoted young pages are not reordered (the
	// "MySQL does not maintain precise LRU ordering within the young
	// list" rule), so a well-sized pool rarely touches the LRU lock.
	if !f.inOld.Load() {
		skip := uint64(p.cfg.Capacity / 4)
		if p.gen.Load()-f.moveGen.Load() <= skip {
			return
		}
	}
	if p.cfg.Policy == EagerLRU {
		start := time.Now()
		p.lruEager.Lock()
		acq := time.Now()
		h.lruWait += acq.Sub(start)
		p.makeYoungLocked(f)
		if p.met.HoldEnabled() {
			p.met.Held(time.Since(acq))
		}
		p.lruEager.Unlock()
		return
	}
	// LLU: bounded spin; defer on failure.
	start := time.Now()
	acquired := p.lruLazy.TryLockFor(p.cfg.SpinWait)
	h.lruWait += time.Since(start)
	if acquired {
		acq := time.Now()
		h.drainBacklogLocked()
		p.makeYoungLocked(f)
		if p.met.HoldEnabled() {
			p.met.Held(time.Since(acq))
		}
		p.lruLazy.Unlock()
		return
	}
	p.deferred.Add(1)
	p.met.Deferred()
	if len(h.backlog) >= p.cfg.BacklogLimit {
		p.dropped.Add(1)
		copy(h.backlog, h.backlog[1:])
		h.backlog = h.backlog[:len(h.backlog)-1]
	}
	h.backlog = append(h.backlog, f)
}

// drainBacklogLocked applies deferred promotions; caller holds the lazy
// LRU lock.
func (h *Handle) drainBacklogLocked() {
	p := h.pool
	// The batch pays the critical-section cost once: deferred
	// promotions are applied together with good locality, which is the
	// point of batching them.
	charged := false
	for _, f := range h.backlog {
		if f.inList { // "after confirming they have not been evicted"
			p.makeYoungCosted(f, !charged)
			charged = true
			p.drained.Add(1)
		} else {
			p.dropped.Add(1)
		}
	}
	h.backlog = h.backlog[:0]
}

// --- LRU list internals. All guarded by the LRU lock. ---

// spinCost charges the configured critical-section cost while a lock is
// held. The cost is charged as wall time (sleep): on a single-CPU
// simulation host a busy-wait holder would never be preempted, so no
// contention could form; sleeping keeps the lock held while other
// workers genuinely queue on it, as they do on the paper's 8-core
// server.
func (p *Pool) spinCost() {
	if p.cfg.CriticalCost <= 0 {
		return
	}
	time.Sleep(p.cfg.CriticalCost)
}

func (p *Pool) makeYoungLocked(f *frame) {
	p.makeYoungCosted(f, true)
}

func (p *Pool) makeYoungCosted(f *frame, charge bool) {
	if !f.inList {
		return
	}
	if charge {
		p.spinCost()
	}
	p.unlinkLocked(f)
	// Insert at head of young list.
	f.prev = nil
	f.next = p.head
	if p.head != nil {
		p.head.prev = f
	}
	p.head = f
	if p.tail == nil {
		p.tail = f
	}
	f.inList = true
	f.inOld.Store(false)
	p.total++
	f.moveGen.Store(p.gen.Add(1))
	p.makeYoungs.Add(1)
	p.rebalanceLocked()
}

// insertAtMidpointLocked puts f at the head of the old sublist.
func (p *Pool) insertAtMidpointLocked(f *frame) {
	if p.oldHead == nil {
		// Old list empty: append at tail.
		f.prev = p.tail
		f.next = nil
		if p.tail != nil {
			p.tail.next = f
		}
		p.tail = f
		if p.head == nil {
			p.head = f
		}
	} else {
		f.prev = p.oldHead.prev
		f.next = p.oldHead
		if p.oldHead.prev != nil {
			p.oldHead.prev.next = f
		} else {
			p.head = f
		}
		p.oldHead.prev = f
	}
	p.oldHead = f
	f.inList = true
	f.inOld.Store(true)
	f.moveGen.Store(p.gen.Load())
	p.total++
	p.oldCount++
	p.rebalanceLocked()
}

func (p *Pool) unlinkLocked(f *frame) {
	if !f.inList {
		return
	}
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		p.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		p.tail = f.prev
	}
	if p.oldHead == f {
		p.oldHead = f.next // next toward tail stays old (or nil)
	}
	if f.inOld.Load() {
		p.oldCount--
	}
	p.total--
	f.inList = false
	f.prev, f.next = nil, nil
}

// rebalanceLocked maintains oldCount ≈ OldFraction * total by moving the
// young/old boundary.
func (p *Pool) rebalanceLocked() {
	target := int(float64(p.total) * p.cfg.OldFraction)
	for p.oldCount < target {
		// Grow old: the youngest-list tail page becomes old.
		var cand *frame
		if p.oldHead != nil {
			cand = p.oldHead.prev
		} else {
			cand = p.tail
		}
		if cand == nil || cand.inOld.Load() {
			break
		}
		cand.inOld.Store(true)
		p.oldHead = cand
		p.oldCount++
	}
	for p.oldCount > target+1 && p.oldHead != nil {
		// Shrink old: promote the old head to young.
		f := p.oldHead
		f.inOld.Store(false)
		p.oldHead = f.next
		p.oldCount--
	}
}

// pickVictimLocked scans from the tail (the coldest old page) for an
// unpinned, io-complete frame.
func (p *Pool) pickVictimLocked() *frame {
	for f := p.tail; f != nil; f = f.prev {
		if f.pins.Load() == 0 && !f.ioPending {
			return f
		}
	}
	return nil
}

// FlushAll writes every dirty resident page to the backing store (a
// checkpoint). Pages stay resident.
func (p *Pool) FlushAll() {
	p.tableMu.Lock()
	frames := make([]*frame, 0, len(p.table))
	for _, f := range p.table {
		frames = append(frames, f)
	}
	p.tableMu.Unlock()
	for _, f := range frames {
		if !f.dirty.Load() {
			continue
		}
		if p.dev != nil {
			p.dev.WriteBlock()
		}
		img := make([]byte, len(f.data))
		f.pageMu.Lock()
		copy(img, f.data)
		f.dirty.Store(false)
		f.pageMu.Unlock()
		p.storeMu.Lock()
		p.store[f.id] = img
		p.storeMu.Unlock()
		p.writeBacks.Add(1)
	}
}

// Resident returns the number of pages currently in the pool.
func (p *Pool) Resident() int {
	p.tableMu.Lock()
	defer p.tableMu.Unlock()
	return len(p.table)
}

// OldLen returns the old-sublist length (for invariant tests).
func (p *Pool) OldLen() int {
	p.lruLock()
	defer p.lruUnlock()
	return p.oldCount
}

// listLen walks the list under the LRU lock (for invariant tests).
func (p *Pool) listLen() int {
	p.lruLock()
	defer p.lruUnlock()
	n := 0
	for f := p.head; f != nil; f = f.next {
		n++
	}
	return n
}

// Stats returns a snapshot of counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Hits:         p.hits.Load(),
		Misses:       p.misses.Load(),
		Evictions:    p.evictions.Load(),
		WriteBacks:   p.writeBacks.Load(),
		MakeYoungs:   p.makeYoungs.Load(),
		Deferred:     p.deferred.Load(),
		Drained:      p.drained.Load(),
		DroppedDefer: p.dropped.Load(),
		Mutex:        p.lruEager.Stats(),
	}
}
