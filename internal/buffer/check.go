package buffer

import "fmt"

// CheckInvariants audits every shard's bookkeeping: the LRU list must
// be a consistent doubly-linked chain partitioned young/old at oldHead
// with matching counters, the page hash must agree with the list, and
// no shard may exceed its frame budget. The torture harness calls it
// at quiescent points; it takes each shard's mutex and LRU lock in the
// same order as the miss path, so it can run against a live pool.
func (p *Pool) CheckInvariants() error {
	for i, s := range p.shards {
		if err := s.checkInvariants(); err != nil {
			return fmt.Errorf("buffer shard %d: %w", i, err)
		}
	}
	return nil
}

func (s *shard) checkInvariants() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lruLock()
	defer s.lruUnlock()

	// Walk the LRU list forward: link symmetry, young-then-old
	// partition, counters.
	inList := make(map[*frame]bool)
	total, old := 0, 0
	sawOldHead := false
	for f := s.head; f != nil; f = f.next {
		if inList[f] {
			return fmt.Errorf("LRU list has a cycle at page %v", f.id)
		}
		inList[f] = true
		total++
		if f.next != nil && f.next.prev != f {
			return fmt.Errorf("broken back-link after page %v", f.id)
		}
		if f.prev == nil && f != s.head {
			return fmt.Errorf("page %v has nil prev but is not head", f.id)
		}
		if !f.inList {
			return fmt.Errorf("page %v linked but inList=false", f.id)
		}
		if f == s.oldHead {
			sawOldHead = true
		}
		if f.inOld.Load() {
			old++
			if !sawOldHead {
				return fmt.Errorf("old page %v precedes oldHead", f.id)
			}
		} else if sawOldHead {
			return fmt.Errorf("young page %v follows oldHead", f.id)
		}
	}
	if s.oldHead != nil && !sawOldHead {
		return fmt.Errorf("oldHead %v not on the list", s.oldHead.id)
	}
	if total != s.total {
		return fmt.Errorf("list holds %d frames, total=%d", total, s.total)
	}
	if old != s.oldCount {
		return fmt.Errorf("list holds %d old frames, oldCount=%d", old, s.oldCount)
	}
	if s.total > s.capacity {
		return fmt.Errorf("total=%d exceeds capacity %d", s.total, s.capacity)
	}
	if (s.head == nil) != (s.tail == nil) {
		return fmt.Errorf("head/tail nil mismatch")
	}
	if s.tail != nil && s.tail.next != nil {
		return fmt.Errorf("tail has a next")
	}

	// The page hash must hold exactly the listed frames, resident must
	// match, and no hashed frame may be tombstoned.
	hashed := 0
	for i := range s.buckets {
		for f := s.buckets[i].Load(); f != nil; f = f.hashNext.Load() {
			hashed++
			if f.shard != s {
				return fmt.Errorf("page %v hashed into a foreign shard", f.id)
			}
			if f.pins.Load() < 0 {
				return fmt.Errorf("page %v tombstoned but still hashed", f.id)
			}
			if !inList[f] {
				return fmt.Errorf("page %v hashed but not on the LRU list", f.id)
			}
		}
	}
	if hashed != s.resident {
		return fmt.Errorf("hash holds %d frames, resident=%d", hashed, s.resident)
	}
	if hashed != total {
		return fmt.Errorf("hash holds %d frames, LRU list %d", hashed, total)
	}
	return nil
}
