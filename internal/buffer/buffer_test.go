package buffer

import (
	"encoding/binary"
	"errors"
	"sync"
	"testing"
	"time"

	"vats/internal/disk"
)

func pool(capacity int, policy UpdatePolicy) *Pool {
	return NewPool(Config{Capacity: capacity, PageSize: 256, Policy: policy})
}

func pid(n uint64) PageID { return PageID{Space: 1, No: n} }

func mustCreate(t *testing.T, p *Pool, id PageID) Frame {
	t.Helper()
	fr, err := p.Create(id)
	if err != nil {
		t.Fatalf("create %v: %v", id, err)
	}
	return fr
}

func TestCreateFetchRoundTrip(t *testing.T) {
	p := pool(4, EagerLRU)
	h := p.NewHandle()
	fr := mustCreate(t, p, pid(1))
	fr.WithPageLock(func() {
		binary.LittleEndian.PutUint64(fr.Data(), 0xdeadbeef)
	})
	fr.MarkDirty()
	fr.Release()

	got, err := h.Fetch(pid(1))
	if err != nil {
		t.Fatal(err)
	}
	if v := binary.LittleEndian.Uint64(got.Data()); v != 0xdeadbeef {
		t.Fatalf("data = %#x", v)
	}
	got.Release()
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Errorf("hits=%d misses=%d", st.Hits, st.Misses)
	}
}

func TestFetchUnknownPage(t *testing.T) {
	p := pool(2, EagerLRU)
	if _, err := p.NewHandle().Fetch(pid(9)); !errors.Is(err, ErrPageNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestCreateDuplicate(t *testing.T) {
	p := pool(2, EagerLRU)
	mustCreate(t, p, pid(1)).Release()
	if _, err := p.Create(pid(1)); !errors.Is(err, ErrPageExists) {
		t.Fatalf("err = %v", err)
	}
}

func TestEvictionPreservesData(t *testing.T) {
	p := pool(2, EagerLRU)
	h := p.NewHandle()
	for i := uint64(1); i <= 2; i++ {
		fr := mustCreate(t, p, pid(i))
		fr.WithPageLock(func() { fr.Data()[0] = byte(i) })
		fr.MarkDirty()
		fr.Release()
	}
	// Creating a third page forces an eviction.
	mustCreate(t, p, pid(3)).Release()
	if p.Resident() != 2 {
		t.Fatalf("resident = %d, want 2", p.Resident())
	}
	if p.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", p.Stats().Evictions)
	}
	// Both original pages must still be readable with their data.
	for i := uint64(1); i <= 2; i++ {
		fr, err := h.Fetch(pid(i))
		if err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
		if fr.Data()[0] != byte(i) {
			t.Fatalf("page %d lost its data: %d", i, fr.Data()[0])
		}
		fr.Release()
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	p := pool(2, EagerLRU)
	a := mustCreate(t, p, pid(1))
	b := mustCreate(t, p, pid(2))
	if _, err := p.Create(pid(3)); !errors.Is(err, ErrNoVictim) {
		t.Fatalf("err = %v, want ErrNoVictim with all pages pinned", err)
	}
	a.Release()
	c, err := p.Create(pid(3))
	if err != nil {
		t.Fatalf("create after unpin: %v", err)
	}
	c.Release()
	b.Release()
}

func TestReleasePanicsWhenOverUnpinned(t *testing.T) {
	p := pool(2, EagerLRU)
	fr := mustCreate(t, p, pid(1))
	fr.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	fr.Release()
}

func TestMidpointInsertionAndOldFraction(t *testing.T) {
	p := NewPool(Config{Capacity: 16, PageSize: 64, OldFraction: 3.0 / 8.0})
	for i := uint64(1); i <= 16; i++ {
		mustCreate(t, p, pid(i)).Release()
	}
	old := p.OldLen()
	// target = 6 (16 * 3/8); allow the rebalance hysteresis of ±1.
	if old < 5 || old > 7 {
		t.Fatalf("old sublist = %d, want ~6", old)
	}
	if p.listLen() != 16 {
		t.Fatalf("list length = %d, want 16", p.listLen())
	}
}

func TestMakeYoungPromotesOldPage(t *testing.T) {
	p := pool(8, EagerLRU)
	h := p.NewHandle()
	for i := uint64(1); i <= 8; i++ {
		mustCreate(t, p, pid(i)).Release()
	}
	before := p.Stats().MakeYoungs
	// Page 1 sits deep in the old region; touching it must promote.
	fr, err := h.Fetch(pid(1))
	if err != nil {
		t.Fatal(err)
	}
	fr.Release()
	if p.Stats().MakeYoungs <= before {
		t.Fatal("old-page hit did not make_young")
	}
	// A young page touched immediately again should take the fast path.
	mid := p.Stats().MakeYoungs
	fr2, _ := h.Fetch(pid(1))
	fr2.Release()
	if p.Stats().MakeYoungs != mid {
		t.Fatal("fresh young page was reordered; fast path broken")
	}
}

func TestHotSetSurvivesScan(t *testing.T) {
	// Midpoint insertion protects the young list from a sequential scan:
	// after touching a hot page repeatedly, a one-pass scan of cold pages
	// must not evict it.
	p := pool(8, EagerLRU)
	h := p.NewHandle()
	for i := uint64(1); i <= 8; i++ {
		mustCreate(t, p, pid(i)).Release()
	}
	// Heat page 1 (promote to young head).
	for j := 0; j < 3; j++ {
		fr, _ := h.Fetch(pid(1))
		fr.Release()
	}
	// Scan 6 new cold pages (fills the old region repeatedly).
	for i := uint64(100); i < 106; i++ {
		mustCreate(t, p, pid(i)).Release()
	}
	if _, err := h.Fetch(pid(1)); err != nil {
		t.Fatal("hot page was evicted by a cold scan")
	}
	if p.Stats().Misses != 0 {
		t.Fatalf("hot page fetch missed (evicted): misses=%d", p.Stats().Misses)
	}
}

func TestLazyLRUDefersUnderContention(t *testing.T) {
	p := NewPool(Config{Capacity: 64, PageSize: 64, Policy: LazyLRU, SpinWait: time.Microsecond})
	for i := uint64(1); i <= 64; i++ {
		mustCreate(t, p, pid(i)).Release()
	}
	// Hold the lazy lock so every promotion attempt times out.
	p.shards[0].lruLazy.Lock()
	h := p.NewHandle()
	for i := uint64(1); i <= 10; i++ {
		fr, err := h.Fetch(pid(i))
		if err != nil {
			t.Fatal(err)
		}
		fr.Release()
	}
	if got := p.Stats().Deferred; got == 0 {
		t.Fatal("no promotions deferred while the LRU lock was held")
	}
	p.shards[0].lruLazy.Unlock()
	// Next successful promotion drains the backlog. Page 1 is the LRU
	// tail and always in the old sublist, so its touch takes the lock.
	fr, _ := h.Fetch(pid(1))
	fr.Release()
	if got := p.Stats().Drained; got == 0 {
		t.Fatal("backlog never drained")
	}
}

func TestLazyBacklogBounded(t *testing.T) {
	p := NewPool(Config{Capacity: 64, PageSize: 64, Policy: LazyLRU, SpinWait: time.Microsecond, BacklogLimit: 4})
	for i := uint64(1); i <= 64; i++ {
		mustCreate(t, p, pid(i)).Release()
	}
	p.shards[0].lruLazy.Lock()
	h := p.NewHandle()
	for i := uint64(1); i <= 20; i++ {
		fr, _ := h.Fetch(pid(i))
		fr.Release()
	}
	p.shards[0].lruLazy.Unlock()
	if len(h.backlog) > 4 {
		t.Fatalf("backlog grew to %d, limit 4", len(h.backlog))
	}
	if p.Stats().DroppedDefer == 0 {
		t.Fatal("overflow entries were not dropped")
	}
}

func TestConcurrentFetchStress(t *testing.T) {
	for _, policy := range []UpdatePolicy{EagerLRU, LazyLRU} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			dev := disk.New(disk.Config{MedianLatency: 5 * time.Microsecond, BlockSize: 256, Seed: 1})
			p := NewPool(Config{Capacity: 32, PageSize: 256, Policy: policy, Device: dev})
			const pages = 64 // working set 2x capacity: constant eviction
			for i := uint64(0); i < pages; i++ {
				fr := mustCreate(t, p, pid(i))
				fr.WithPageLock(func() {
					binary.LittleEndian.PutUint64(fr.Data(), i)
				})
				fr.MarkDirty()
				fr.Release()
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				seed := uint64(g)
				go func() {
					defer wg.Done()
					h := p.NewHandle()
					x := seed*2654435761 + 1
					for i := 0; i < 300; i++ {
						x ^= x << 13
						x ^= x >> 7
						x ^= x << 17
						id := pid(x % pages)
						fr, err := h.Fetch(id)
						if err != nil {
							t.Errorf("fetch %v: %v", id, err)
							return
						}
						if got := binary.LittleEndian.Uint64(fr.Data()); got != id.No {
							t.Errorf("page %v contains %d (stale or corrupt image)", id, got)
							fr.Release()
							return
						}
						fr.Release()
					}
				}()
			}
			wg.Wait()
			if p.Resident() > 32 {
				t.Fatalf("resident %d exceeds capacity", p.Resident())
			}
			if p.listLen() != p.Resident() {
				t.Fatalf("list length %d != resident %d", p.listLen(), p.Resident())
			}
		})
	}
}

func TestWritesPersistAcrossEvictionUnderConcurrency(t *testing.T) {
	// Writers increment per-page counters under the page lock while the
	// pool churns; total increments must survive write-back/reload.
	p := NewPool(Config{Capacity: 8, PageSize: 64})
	const pages = 24
	for i := uint64(0); i < pages; i++ {
		mustCreate(t, p, pid(i)).Release()
	}
	const workers = 6
	const perWorker = 100
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		seed := uint64(g + 1)
		go func() {
			defer wg.Done()
			h := p.NewHandle()
			x := seed
			for i := 0; i < perWorker; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				id := pid(x % pages)
				fr, err := h.Fetch(id)
				if err != nil {
					t.Errorf("fetch: %v", err)
					return
				}
				fr.WithPageLock(func() {
					v := binary.LittleEndian.Uint64(fr.Data())
					binary.LittleEndian.PutUint64(fr.Data(), v+1)
				})
				fr.MarkDirty()
				fr.Release()
			}
		}()
	}
	wg.Wait()
	var total uint64
	h := p.NewHandle()
	for i := uint64(0); i < pages; i++ {
		fr, err := h.Fetch(pid(i))
		if err != nil {
			t.Fatal(err)
		}
		total += binary.LittleEndian.Uint64(fr.Data())
		fr.Release()
	}
	if total != workers*perWorker {
		t.Fatalf("total increments = %d, want %d (lost updates)", total, workers*perWorker)
	}
}

func TestFlushAllClearsDirty(t *testing.T) {
	p := pool(4, EagerLRU)
	fr := mustCreate(t, p, pid(1))
	fr.WithPageLock(func() { fr.Data()[0] = 7 })
	fr.MarkDirty()
	fr.Release()
	p.FlushAll()
	if p.Stats().WriteBacks == 0 {
		t.Fatal("flush wrote nothing")
	}
	// Second flush should be a no-op.
	before := p.Stats().WriteBacks
	p.FlushAll()
	if p.Stats().WriteBacks != before {
		t.Fatal("second flush rewrote clean pages")
	}
}

func TestNewPoolValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero capacity")
		}
	}()
	NewPool(Config{})
}

func TestPolicyAndPageIDStrings(t *testing.T) {
	if EagerLRU.String() != "EagerLRU" || LazyLRU.String() != "LazyLRU" {
		t.Error("policy strings")
	}
	if pid(3).String() != "1/3" {
		t.Error("page id string")
	}
}
