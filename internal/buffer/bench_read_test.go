package buffer

import (
	"sync/atomic"
	"testing"
)

// Read-path benchmarks: the buffer-pool hit path that every point read
// funnels through. The parallel variants are the headline for the
// sharded page table — run them with -cpu N to model an N-core server
// (this container exposes one core, so parallelism expresses as OS
// threads contending for it, which is exactly where a single table
// mutex convoys). BENCH_PR3.json freezes the pre-shard baseline.

// benchReadPool builds a pool with every page resident so the benchmark
// exercises the pure hit path (no device, no misses, no evictions).
func benchReadPool(b *testing.B, pages int) *Pool {
	b.Helper()
	p := NewPool(Config{Capacity: pages * 2, PageSize: 256})
	for i := uint64(0); i < uint64(pages); i++ {
		fr, err := p.Create(PageID{Space: 1, No: i})
		if err != nil {
			b.Fatal(err)
		}
		fr.Release()
	}
	return p
}

const benchReadPages = 2048

// BenchmarkPoolFetchHit is the single-threaded hit latency (the ±10%
// no-regression guardrail) and the 0-alloc fast-path check.
func BenchmarkPoolFetchHit(b *testing.B) {
	p := benchReadPool(b, benchReadPages)
	h := p.NewHandle()
	x := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		fr, err := h.Fetch(PageID{Space: 1, No: x % benchReadPages})
		if err != nil {
			b.Fatal(err)
		}
		fr.Release()
	}
}

// BenchmarkPoolFetchHitParallel is the multi-core point of the PR: all
// goroutines hammer the page table and LRU state at once.
func BenchmarkPoolFetchHitParallel(b *testing.B) {
	p := benchReadPool(b, benchReadPages)
	var seed atomic.Uint64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		h := p.NewHandle()
		x := seed.Add(0x9e3779b9)*2654435761 + 1
		for pb.Next() {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			fr, err := h.Fetch(PageID{Space: 1, No: x % benchReadPages})
			if err != nil {
				b.Error(err)
				return
			}
			fr.Release()
		}
	})
}
