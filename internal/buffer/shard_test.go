package buffer

import (
	"encoding/binary"
	"sync"
	"testing"
	"time"

	"vats/internal/disk"
)

// TestShardCountNormalization checks the Shards knob: rounding to a
// power of two, clamping when shards would outnumber frames, and the
// single-instance default.
func TestShardCountNormalization(t *testing.T) {
	cases := []struct {
		capacity, shards, want int
	}{
		{64, 0, 1},
		{64, 1, 1},
		{64, 3, 4},
		{64, 8, 8},
		{4, 8, 4},  // clamped: at least one frame per shard
		{1, 16, 1}, // fully clamped
	}
	for _, c := range cases {
		p := NewPool(Config{Capacity: c.capacity, PageSize: 64, Shards: c.shards})
		if got := p.Shards(); got != c.want {
			t.Errorf("capacity %d shards %d: got %d instances, want %d",
				c.capacity, c.shards, got, c.want)
		}
	}
}

// TestShardCapacityConserved checks that the per-shard budgets sum
// exactly to the configured capacity, including non-divisible splits.
func TestShardCapacityConserved(t *testing.T) {
	for _, cfg := range []struct{ capacity, shards int }{
		{64, 4}, {67, 4}, {100, 8}, {33, 16}, {4096, 8},
	} {
		p := NewPool(Config{Capacity: cfg.capacity, PageSize: 64, Shards: cfg.shards})
		sum := 0
		for _, c := range p.shardCapacities() {
			if c < 1 {
				t.Errorf("capacity %d shards %d: zero-frame shard", cfg.capacity, cfg.shards)
			}
			sum += c
		}
		if sum != cfg.capacity {
			t.Errorf("capacity %d shards %d: budgets sum to %d", cfg.capacity, cfg.shards, sum)
		}
	}
}

// TestShardedEvictionStress churns a sharded pool with a working set
// twice its capacity and verifies data integrity, the capacity bound,
// and LRU-list/resident agreement per shard. Run with -race: hits go
// through the lock-free hash probe while evictions rewrite the chains.
func TestShardedEvictionStress(t *testing.T) {
	for _, policy := range []UpdatePolicy{EagerLRU, LazyLRU} {
		t.Run(policy.String(), func(t *testing.T) {
			dev := disk.New(disk.Config{MedianLatency: 2 * time.Microsecond, BlockSize: 256, Seed: 7})
			p := NewPool(Config{Capacity: 32, PageSize: 256, Shards: 4, Policy: policy, Device: dev})
			const pages = 64
			for i := uint64(0); i < pages; i++ {
				fr := mustCreate(t, p, pid(i))
				fr.WithPageLock(func() {
					binary.LittleEndian.PutUint64(fr.Data(), i)
				})
				fr.MarkDirty()
				fr.Release()
			}
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				seed := uint64(g + 1)
				go func() {
					defer wg.Done()
					h := p.NewHandle()
					x := seed * 2654435761
					for i := 0; i < 400; i++ {
						x ^= x << 13
						x ^= x >> 7
						x ^= x << 17
						id := pid(x % pages)
						fr, err := h.Fetch(id)
						if err != nil {
							t.Errorf("fetch %v: %v", id, err)
							return
						}
						if got := binary.LittleEndian.Uint64(fr.Data()); got != id.No {
							t.Errorf("page %v contains %d (stale or corrupt image)", id, got)
							fr.Release()
							return
						}
						fr.Release()
					}
				}()
			}
			wg.Wait()
			if p.Resident() > 32 {
				t.Fatalf("resident %d exceeds capacity 32", p.Resident())
			}
			if p.listLen() != p.Resident() {
				t.Fatalf("list length %d != resident %d", p.listLen(), p.Resident())
			}
			for i, s := range p.shards {
				s.mu.Lock()
				res := s.resident
				s.mu.Unlock()
				if res > s.capacity {
					t.Errorf("shard %d resident %d exceeds its budget %d", i, res, s.capacity)
				}
			}
			st := p.Stats()
			if st.Evictions == 0 {
				t.Error("no evictions despite 2x-capacity working set")
			}
		})
	}
}

// TestShardRouting checks every page is found again after creation no
// matter which shard it hashed to, and that pages spread across shards
// rather than piling into one.
func TestShardRouting(t *testing.T) {
	p := NewPool(Config{Capacity: 256, PageSize: 64, Shards: 8})
	h := p.NewHandle()
	for i := uint64(0); i < 256; i++ {
		id := PageID{Space: uint32(i % 3), No: i}
		fr, err := p.Create(id)
		if err != nil {
			t.Fatalf("create %v: %v", id, err)
		}
		fr.Release()
		got, err := h.Fetch(id)
		if err != nil {
			t.Fatalf("fetch %v right after create: %v", id, err)
		}
		got.Release()
	}
	used := 0
	for _, s := range p.shards {
		s.mu.Lock()
		if s.resident > 0 {
			used++
		}
		s.mu.Unlock()
	}
	if used < len(p.shards)/2 {
		t.Errorf("only %d of %d shards used: bad hash spread", used, len(p.shards))
	}
}

// TestFetchHitZeroAlloc guards the PR's 0-alloc acceptance criterion:
// a buffer-pool hit must not allocate (Frame is a value, the hash probe
// is lock-free, promotions reuse the backlog slice).
func TestFetchHitZeroAlloc(t *testing.T) {
	for _, shards := range []int{1, 8} {
		p := NewPool(Config{Capacity: 64, PageSize: 128, Shards: shards})
		for i := uint64(1); i <= 32; i++ {
			mustCreate(t, p, pid(i)).Release()
		}
		h := p.NewHandle()
		x := uint64(1)
		allocs := testing.AllocsPerRun(2000, func() {
			x ^= x << 13
			x ^= x >> 7
			x ^= x << 17
			fr, err := h.Fetch(pid(x%32 + 1))
			if err != nil {
				t.Fatal(err)
			}
			fr.Release()
		})
		if allocs != 0 {
			t.Errorf("shards=%d: %v allocs per hit, want 0", shards, allocs)
		}
	}
}

// TestConcurrentCreateFetchEvictRace aims the race detector at the
// pin-tombstone protocol: readers race evictors for the same frames.
func TestConcurrentCreateFetchEvictRace(t *testing.T) {
	p := NewPool(Config{Capacity: 8, PageSize: 64, Shards: 2})
	const pages = 24
	for i := uint64(0); i < pages; i++ {
		fr := mustCreate(t, p, pid(i))
		fr.WithPageLock(func() { fr.Data()[0] = byte(i) })
		fr.MarkDirty()
		fr.Release()
	}
	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		seed := uint64(g + 1)
		go func() {
			defer wg.Done()
			h := p.NewHandle()
			x := seed
			for i := 0; i < 500; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				id := pid(x % pages)
				fr, err := h.Fetch(id)
				if err != nil {
					t.Errorf("fetch %v: %v", id, err)
					return
				}
				if fr.Data()[0] != byte(id.No) {
					t.Errorf("page %v corrupt: %d", id, fr.Data()[0])
					fr.Release()
					return
				}
				fr.Release()
			}
		}()
	}
	wg.Wait()
}
