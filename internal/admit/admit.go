// Package admit is the network front door's admission-control layer:
// a bounded ready queue feeding a fixed pool of execution slots, with
// per-class load shedding and a feedback controller that tracks a
// configured p99 queue-wait target.
//
// The shape is internal/queuesim's M/G/c worker pool made into an
// enforcement mechanism. The paper's VoltDB study (Appendix A)
// attributes 99.9% of latency variance to queueing delay; the only way
// a server can *bound* that delay under open-loop overload is to bound
// the queue. The controller therefore turns one knob — the effective
// ready-queue capacity — to hold the p99 of admitted-request queue
// wait at the target: by Little's law the wait of the request at queue
// position k is ≈ k·E[S]/c, so capping the queue caps the wait, and
// the feedback loop finds the cap that matches the target without
// anyone measuring E[S] explicitly.
//
// Shedding is class-aware: each class may only occupy a fraction of
// the effective capacity (High 1.0, Normal 0.7, Low 0.4), so as the
// controller shrinks the queue under overload, Low-class work sheds
// first and High-class work sheds only when even a High-only queue
// would violate the target. When the controller shrinks the capacity
// below the current queue length it also evicts queued low-priority
// waiters (newest first — they have invested the least wait).
package admit

import (
	"errors"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"vats/internal/obs"
)

// Class is an admission priority class.
type Class uint8

// Classes, highest priority first. The zero value is High so that
// un-labelled work is never accidentally sheddable before labelled
// work — a conservative default for a front door.
const (
	High Class = iota
	Normal
	Low
	NumClasses = 3
)

// String names the class.
func (c Class) String() string {
	switch c {
	case High:
		return "high"
	case Normal:
		return "normal"
	case Low:
		return "low"
	default:
		return "unknown"
	}
}

// ClassNames lists every class name, highest priority first (the
// NetMetrics shed-counter labels).
func ClassNames() []string { return []string{"high", "normal", "low"} }

// classFrac is the fraction of the effective queue capacity each class
// may occupy: an arriving request of class k is shed when the queue
// already holds ≥ frac[k]·effCap waiters.
var classFrac = [NumClasses]float64{High: 1.0, Normal: 0.7, Low: 0.4}

// Errors.
var (
	// ErrShed means the request was load-shed: the ready queue was past
	// the class's share of the controlled capacity. The client should
	// back off and retry (or route elsewhere).
	ErrShed = errors.New("admit: load shed")
	// ErrClosed means the controller is shut down.
	ErrClosed = errors.New("admit: closed")
)

// Config configures a Controller. The zero value is usable: 4 slots,
// a 256-deep queue, no p99 feedback (static capacity).
type Config struct {
	// Slots is the number of concurrent execution slots (c in M/G/c);
	// default 4.
	Slots int
	// QueueCap is the hard bound on queued (admitted-but-waiting)
	// requests; default 256. The feedback controller only ever shrinks
	// capacity below this, never grows past it.
	QueueCap int
	// TargetP99 is the queue-wait p99 the feedback controller tracks;
	// 0 disables feedback (the capacity stays at QueueCap).
	TargetP99 time.Duration
	// Window is the feedback evaluation period (default 100ms).
	Window time.Duration
	// DisableShed admits everything: the queue is unbounded and the
	// feedback controller only observes — the "uncontrolled" baseline
	// the over-capacity experiments compare against.
	DisableShed bool
	// Metrics, when non-nil, receives queue-depth/wait/shed series.
	Metrics *obs.NetMetrics
}

// waiter is one queued admission request.
type waiter struct {
	ch    chan outcome
	enq   time.Time
	class Class
	prev  *waiter
	next  *waiter
}

type outcome uint8

const (
	granted outcome = iota
	shedded
	closed
)

var waiterPool = sync.Pool{New: func() any { return &waiter{ch: make(chan outcome, 1)} }}

// fifo is a doubly-linked FIFO of waiters: grants pop the head (oldest
// first), shed evictions pop the tail (newest first).
type fifo struct {
	head, tail *waiter
	n          int
}

func (q *fifo) push(w *waiter) {
	w.prev, w.next = q.tail, nil
	if q.tail != nil {
		q.tail.next = w
	} else {
		q.head = w
	}
	q.tail = w
	q.n++
}

func (q *fifo) remove(w *waiter) {
	if w.prev != nil {
		w.prev.next = w.next
	} else {
		q.head = w.next
	}
	if w.next != nil {
		w.next.prev = w.prev
	} else {
		q.tail = w.prev
	}
	w.prev, w.next = nil, nil
	q.n--
}

func (q *fifo) popHead() *waiter {
	w := q.head
	if w != nil {
		q.remove(w)
	}
	return w
}

func (q *fifo) popTail() *waiter {
	w := q.tail
	if w != nil {
		q.remove(w)
	}
	return w
}

// winBuckets sizes the window histogram: bucket i holds waits in
// [2^(i-1), 2^i) microseconds, so the range spans 1µs .. ~2.3 hours.
const winBuckets = 43

// window accumulates admitted queue waits for one feedback period.
// Observations are lock-free (atomic bucket increments); the feedback
// loop swaps in a fresh window and reads the retired one at leisure.
type window struct {
	buckets [winBuckets]atomic.Int64
	n       atomic.Int64
	maxNs   atomic.Int64
}

func (w *window) observe(d time.Duration) {
	us := uint64(d / time.Microsecond)
	i := bits.Len64(us) // 0 for 0, Len64(us) = floor(log2)+1
	if i >= winBuckets {
		i = winBuckets - 1
	}
	w.buckets[i].Add(1)
	w.n.Add(1)
	for {
		cur := w.maxNs.Load()
		if int64(d) <= cur || w.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// p99 estimates the window's 0.99 queue-wait quantile by linear
// interpolation inside the selected power-of-two bucket, clamped to
// the observed maximum.
func (w *window) p99() time.Duration {
	n := w.n.Load()
	if n == 0 {
		return 0
	}
	rank := 0.99 * float64(n)
	var cum int64
	for i := 0; i < winBuckets; i++ {
		c := w.buckets[i].Load()
		if c == 0 {
			continue
		}
		prev := cum
		cum += c
		if float64(cum) >= rank {
			lo := int64(0)
			if i > 0 {
				lo = int64(1) << (i - 1) * 1000 // µs → ns
			}
			hi := int64(1) << i * 1000
			est := lo + int64(float64(hi-lo)*(rank-float64(prev))/float64(c))
			if mx := w.maxNs.Load(); mx > 0 && est > mx {
				est = mx
			}
			return time.Duration(est)
		}
	}
	return time.Duration(w.maxNs.Load())
}

// Controller is a running admission controller.
type Controller struct {
	cfg Config
	met *obs.NetMetrics

	mu      sync.Mutex
	slots   int // free execution slots
	queues  [NumClasses]fifo
	waiting int
	done    bool

	// effCap is the feedback-controlled queue capacity (≤ cfg.QueueCap).
	// Read on the Admit fast path without the mutex.
	effCap atomic.Int64

	// cur is the active measurement window; the feedback loop rotates it.
	cur atomic.Pointer[window]

	// lastP99 is the most recent closed window's p99 (ns), for Stats.
	lastP99 atomic.Int64

	admitted atomic.Int64
	shedN    [NumClasses]atomic.Int64

	stop chan struct{}
	wg   sync.WaitGroup
}

// New starts a controller.
func New(cfg Config) *Controller {
	if cfg.Slots <= 0 {
		cfg.Slots = 4
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 256
	}
	if cfg.Window <= 0 {
		cfg.Window = 100 * time.Millisecond
	}
	c := &Controller{cfg: cfg, met: cfg.Metrics, slots: cfg.Slots, stop: make(chan struct{})}
	c.effCap.Store(int64(cfg.QueueCap))
	c.met.SetCapacity(int64(cfg.QueueCap))
	c.cur.Store(&window{})
	if cfg.TargetP99 > 0 && !cfg.DisableShed {
		c.wg.Add(1)
		go c.feedbackLoop()
	}
	return c
}

// Admit blocks until an execution slot is granted or the request is
// shed, returning the time spent in the ready queue. A nil error means
// the caller holds a slot and must call Release when its request
// finishes executing.
func (c *Controller) Admit(class Class) (time.Duration, error) {
	if class >= NumClasses {
		class = Low
	}
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return 0, ErrClosed
	}
	// Fast path: a free slot and an empty queue. (With waiters present
	// a new arrival must queue behind them, or the queue would starve.)
	if c.slots > 0 && c.waiting == 0 {
		c.slots--
		c.mu.Unlock()
		c.admitted.Add(1)
		c.met.Admitted(0)
		c.cur.Load().observe(0)
		return 0, nil
	}
	// Shed decision: the class may only occupy its fraction of the
	// controlled capacity.
	if !c.cfg.DisableShed {
		allowed := int(classFrac[class] * float64(c.effCap.Load()))
		if allowed < 1 {
			allowed = 1
		}
		if c.waiting >= allowed {
			c.mu.Unlock()
			c.shedN[class].Add(1)
			c.met.Shed(class.String(), 0)
			return 0, ErrShed
		}
	}
	w := waiterPool.Get().(*waiter)
	w.enq = time.Now()
	w.class = class
	c.queues[class].push(w)
	c.waiting++
	c.mu.Unlock()
	c.met.Enqueued()

	out := <-w.ch
	wait := time.Since(w.enq)
	waiterPool.Put(w)
	c.met.Dequeued()
	switch out {
	case granted:
		c.admitted.Add(1)
		c.met.Admitted(wait)
		c.cur.Load().observe(wait)
		return wait, nil
	case shedded:
		c.shedN[class].Add(1)
		c.met.Shed(class.String(), wait)
		return wait, ErrShed
	default:
		return wait, ErrClosed
	}
}

// Release returns an execution slot, handing it to the oldest waiter
// of the highest-priority non-empty class if any.
func (c *Controller) Release() {
	c.mu.Lock()
	w := c.popNextLocked()
	if w == nil {
		if c.slots < c.cfg.Slots {
			c.slots++
		}
		c.mu.Unlock()
		return
	}
	c.waiting--
	c.mu.Unlock()
	w.ch <- granted
}

// popNextLocked removes the next waiter to grant: FIFO within class,
// highest class first.
func (c *Controller) popNextLocked() *waiter {
	for cl := 0; cl < NumClasses; cl++ {
		if w := c.queues[cl].popHead(); w != nil {
			return w
		}
	}
	return nil
}

// feedbackLoop closes one measurement window per period and adjusts
// the effective queue capacity to track the p99 target: multiplicative
// decrease when the closed window's p99 overshoots, additive increase
// when it sits comfortably below — AIMD, so the capacity converges to
// the largest queue the service rate can drain inside the target.
func (c *Controller) feedbackLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.cfg.Window)
	defer tick.Stop()
	for {
		select {
		case <-c.stop:
			return
		case <-tick.C:
			old := c.cur.Swap(&window{})
			p99 := old.p99()
			if old.n.Load() > 0 {
				c.lastP99.Store(int64(p99))
			}
			cap := c.effCap.Load()
			switch {
			case old.n.Load() >= 4 && p99 > c.cfg.TargetP99:
				cap /= 2
				if cap < 2 {
					cap = 2
				}
			case p99 < c.cfg.TargetP99*3/5:
				step := int64(c.cfg.QueueCap / 64)
				if step < 1 {
					step = 1
				}
				cap += step
				if cap > int64(c.cfg.QueueCap) {
					cap = int64(c.cfg.QueueCap)
				}
			}
			if cap != c.effCap.Load() {
				c.effCap.Store(cap)
				c.met.SetCapacity(cap)
			}
			c.evictExcess(int(cap))
		}
	}
}

// evictExcess sheds queued waiters down to the (possibly just shrunk)
// capacity, and re-applies the class fractions: lowest class first,
// newest first within a class (they have invested the least wait).
func (c *Controller) evictExcess(cap int) {
	var evict []*waiter
	c.mu.Lock()
	for cl := NumClasses - 1; cl >= 0 && c.waiting > cap; cl-- {
		allowed := int(classFrac[cl] * float64(cap))
		for c.queues[cl].n > allowed && c.waiting > cap {
			w := c.queues[cl].popTail()
			if w == nil {
				break
			}
			c.waiting--
			evict = append(evict, w)
		}
	}
	c.mu.Unlock()
	for _, w := range evict {
		w.ch <- shedded
	}
}

// Stats is a point-in-time controller snapshot.
type Stats struct {
	// Slots and QueueCap echo the configuration.
	Slots, QueueCap int
	// FreeSlots and Waiting are instantaneous occupancy.
	FreeSlots, Waiting int
	// EffectiveCap is the feedback-controlled queue capacity.
	EffectiveCap int
	// Admitted counts granted requests; Shed counts per class.
	Admitted int64
	Shed     [NumClasses]int64
	// WindowP99 is the last closed window's admitted queue-wait p99.
	WindowP99 time.Duration
	// TargetP99 echoes the configured target (0 = no feedback).
	TargetP99 time.Duration
}

// ShedTotal sums sheds across classes.
func (s Stats) ShedTotal() int64 {
	var t int64
	for _, n := range s.Shed {
		t += n
	}
	return t
}

// Stats snapshots the controller.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	st := Stats{
		Slots:        c.cfg.Slots,
		QueueCap:     c.cfg.QueueCap,
		FreeSlots:    c.slots,
		Waiting:      c.waiting,
		EffectiveCap: int(c.effCap.Load()),
		Admitted:     c.admitted.Load(),
		WindowP99:    time.Duration(c.lastP99.Load()),
		TargetP99:    c.cfg.TargetP99,
	}
	c.mu.Unlock()
	for i := range st.Shed {
		st.Shed[i] = c.shedN[i].Load()
	}
	return st
}

// Close shuts the controller down: queued waiters are released with
// ErrClosed, subsequent Admits fail fast. Idempotent.
func (c *Controller) Close() {
	c.mu.Lock()
	if c.done {
		c.mu.Unlock()
		return
	}
	c.done = true
	var all []*waiter
	for cl := range c.queues {
		for {
			w := c.queues[cl].popHead()
			if w == nil {
				break
			}
			c.waiting--
			all = append(all, w)
		}
	}
	c.mu.Unlock()
	close(c.stop)
	for _, w := range all {
		w.ch <- closed
	}
	c.wg.Wait()
}
