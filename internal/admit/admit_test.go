package admit

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"vats/internal/obs"
)

func TestFastPathNoWait(t *testing.T) {
	c := New(Config{Slots: 2, QueueCap: 8})
	defer c.Close()
	w, err := c.Admit(Normal)
	if err != nil {
		t.Fatalf("admit: %v", err)
	}
	if w != 0 {
		t.Fatalf("fast path should report zero wait, got %v", w)
	}
	c.Release()
	st := c.Stats()
	if st.Admitted != 1 || st.FreeSlots != 2 {
		t.Fatalf("stats after release: %+v", st)
	}
}

func TestQueueFIFOAndPriority(t *testing.T) {
	c := New(Config{Slots: 1, QueueCap: 16})
	defer c.Close()
	if _, err := c.Admit(High); err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var order []string
	var wg sync.WaitGroup
	start := func(name string, cl Class) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := c.Admit(cl); err != nil {
				t.Errorf("%s: %v", name, err)
				return
			}
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			c.Release()
		}()
	}
	// Enqueue in a known order, waiting until each is queued before
	// adding the next so FIFO position is deterministic.
	waitQueued := func(n int) {
		for i := 0; i < 2000; i++ {
			if c.Stats().Waiting == n {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatalf("queue never reached depth %d", n)
	}
	start("low1", Low)
	waitQueued(1)
	start("norm1", Normal)
	waitQueued(2)
	start("norm2", Normal)
	waitQueued(3)
	start("high1", High)
	waitQueued(4)

	c.Release() // free the held slot; grants cascade as each finishes
	wg.Wait()
	want := []string{"high1", "norm1", "norm2", "low1"}
	mu.Lock()
	defer mu.Unlock()
	if len(order) != len(want) {
		t.Fatalf("order %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order %v, want %v", order, want)
		}
	}
}

func TestShedPerClassThresholds(t *testing.T) {
	// QueueCap 10 → allowed depth: low 4, normal 7, high 10.
	c := New(Config{Slots: 1, QueueCap: 10})
	defer c.Close()
	if _, err := c.Admit(High); err != nil { // occupy the slot
		t.Fatal(err)
	}
	fill := func(n int, cl Class) {
		for i := 0; i < n; i++ {
			go c.Admit(cl) //nolint:errcheck
		}
		deadline := time.Now().Add(2 * time.Second)
		for c.Stats().Waiting < n && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}
	fill(4, High)
	if _, err := c.Admit(Low); err != ErrShed {
		t.Fatalf("low at depth 4: err=%v, want ErrShed", err)
	}
	if c.Stats().Shed[Low] != 1 {
		t.Fatalf("shed count: %+v", c.Stats().Shed)
	}
	fill(7, High)
	if _, err := c.Admit(Normal); err != ErrShed {
		t.Fatalf("normal at depth 7: err=%v, want ErrShed", err)
	}
	fill(10, High)
	if _, err := c.Admit(High); err != ErrShed {
		t.Fatalf("high at depth 10: err=%v, want ErrShed", err)
	}
}

func TestDisableShedNeverSheds(t *testing.T) {
	c := New(Config{Slots: 1, QueueCap: 2, DisableShed: true})
	defer c.Close()
	if _, err := c.Admit(Low); err != nil {
		t.Fatal(err)
	}
	const n = 50 // far past QueueCap
	var wg sync.WaitGroup
	var sheds atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Admit(Low)
			if err == ErrShed {
				sheds.Add(1)
				return
			}
			if err == nil {
				c.Release()
			}
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Waiting < n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Release()
	wg.Wait()
	if got := sheds.Load(); got != 0 {
		t.Fatalf("%d sheds with DisableShed", got)
	}
}

func TestFeedbackShrinksAndRecovers(t *testing.T) {
	met := obs.NewNetMetrics(obs.New(), ClassNames()...)
	c := New(Config{
		Slots:     1,
		QueueCap:  64,
		TargetP99: time.Millisecond,
		Window:    10 * time.Millisecond,
		Metrics:   met,
	})
	defer c.Close()
	// Pump work through a single slot with 3ms service time: admitted
	// queue waits (~N·3ms) far exceed the 1ms target, so the controller
	// must shrink the effective capacity.
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := c.Admit(High)
				if err == nil {
					time.Sleep(3 * time.Millisecond) // service slower than target
					c.Release()
				}
			}
		}()
	}
	deadline := time.Now().Add(3 * time.Second)
	for c.Stats().EffectiveCap >= 64 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	shrunk := c.Stats().EffectiveCap
	close(stop)
	wg.Wait()
	if shrunk >= 64 {
		t.Fatalf("feedback never shrank capacity: effCap=%d", shrunk)
	}
	// Idle windows (p99 below target) grow capacity back.
	deadline = time.Now().Add(3 * time.Second)
	for c.Stats().EffectiveCap <= shrunk && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if got := c.Stats().EffectiveCap; got <= shrunk {
		t.Fatalf("capacity never recovered: %d (shrunk %d)", got, shrunk)
	}
}

func TestCloseReleasesWaiters(t *testing.T) {
	c := New(Config{Slots: 1, QueueCap: 8})
	if _, err := c.Admit(High); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := c.Admit(Normal)
			errs <- err
		}()
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Stats().Waiting < 4 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	c.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != ErrClosed {
			t.Fatalf("waiter err=%v, want ErrClosed", err)
		}
	}
	if _, err := c.Admit(High); err != ErrClosed {
		t.Fatalf("post-close admit err=%v", err)
	}
}

func TestWindowP99(t *testing.T) {
	var w window
	for i := 0; i < 99; i++ {
		w.observe(100 * time.Microsecond)
	}
	w.observe(10 * time.Millisecond)
	p := w.p99()
	if p < 100*time.Microsecond || p > 10*time.Millisecond {
		t.Fatalf("p99=%v outside [100µs,10ms]", p)
	}
	var z window
	if z.p99() != 0 {
		t.Fatal("empty window p99 should be 0")
	}
}

// TestAdmitStressRace hammers Admit/Release from many goroutines with
// mixed classes and a concurrent Close, then checks conservation
// invariants. Run under -race this is the admission queue's storm test.
func TestAdmitStressRace(t *testing.T) {
	met := obs.NewNetMetrics(obs.New(), ClassNames()...)
	c := New(Config{
		Slots:     4,
		QueueCap:  32,
		TargetP99: 500 * time.Microsecond,
		Window:    5 * time.Millisecond,
		Metrics:   met,
	})
	const workers = 32
	var wg sync.WaitGroup
	var admitted, shed atomic.Int64
	stop := make(chan struct{})
	for i := 0; i < workers; i++ {
		cl := Class(i % int(NumClasses))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := c.Admit(cl)
				switch err {
				case nil:
					admitted.Add(1)
					c.Release()
				case ErrShed:
					shed.Add(1)
				case ErrClosed:
					return
				}
			}
		}()
	}
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()
	st := c.Stats()
	if st.Waiting != 0 {
		t.Fatalf("waiters left behind: %+v", st)
	}
	if st.FreeSlots != 4 {
		t.Fatalf("slots not conserved: %+v", st)
	}
	if st.Admitted != admitted.Load() {
		t.Fatalf("admitted %d, controller says %d", admitted.Load(), st.Admitted)
	}
	if st.ShedTotal() != shed.Load() {
		t.Fatalf("shed %d, controller says %d", shed.Load(), st.ShedTotal())
	}
	c.Close()
	c.Close() // idempotent
}
