// Package faultfs is the deterministic fault model behind the crash &
// fault-injection torture harness. A Plan is fully determined by a
// single int64 seed: the outcome of the k-th device operation — whether
// it suffers a transient I/O error, a silently dropped fsync, a stall,
// or the machine-wide crash point (with a seeded torn-write fraction) —
// is a pure function of (seed, k). Replaying the same seed therefore
// replays a byte-identical fault schedule, which is what makes every
// torture failure a one-line repro command.
//
// The Plan models one machine: all log devices of an engine share it,
// so the crash point is keyed by the machine-wide operation count and a
// crash stops every device at once, exactly like pulling the plug.
package faultfs

import (
	"errors"
	"fmt"
	"sync/atomic"
	"time"
)

// Errors surfaced by fault-capable devices.
var (
	// ErrIO is a transient injected I/O error: the operation had no
	// effect and may be retried.
	ErrIO = errors.New("faultfs: injected I/O error")
	// ErrCrashed means the plan's crash point has been reached; the
	// device refuses all further operations.
	ErrCrashed = errors.New("faultfs: device crashed")
)

// Config sets the fault mix. All probabilities are per operation in
// [0, 1]; the zero value is a benign plan (no faults, no crash).
type Config struct {
	// IOErrorP is the probability that a write or fsync fails with a
	// transient ErrIO (the op has no effect).
	IOErrorP float64
	// DropFsyncP is the probability that an fsync reports success
	// without persisting anything — a lying device. The dropped bytes
	// persist at the next honest fsync, so this models a deferred
	// flush, and the harness forgives acknowledged commits lost this
	// way (they are reported as at-risk instead).
	DropFsyncP float64
	// StallP is the probability that an operation stalls for StallDur
	// before completing (a device-cache hiccup). Stalls perturb timing
	// only, never correctness.
	StallP   float64
	StallDur time.Duration
	// CrashOp, when > 0, crashes the machine at the CrashOp-th
	// operation (1-based, counted across every device sharing the
	// plan). The crashing op applies torn-write semantics: a seeded
	// prefix of its payload takes effect before the crash.
	CrashOp int64
	// CrashTorn overrides the torn fraction of the crashing op when in
	// [0, 1]; a negative value (the default for NewPlan callers that
	// leave it zero must set -1 explicitly) draws it from the seed.
	CrashTorn float64
}

// Outcome is the fault decision for one operation.
type Outcome struct {
	// Op is the 1-based machine-wide operation index.
	Op int64
	// Err: fail the op with ErrIO (no effect).
	Err bool
	// DropFsync: report fsync success without persisting.
	DropFsync bool
	// Stall delays the op by this much before it proceeds.
	Stall time.Duration
	// Crash: this op is the crash point; Torn in [0,1] is the fraction
	// of its payload that takes effect before the machine dies.
	Crash bool
	Torn  float64
}

// OpKind classifies device operations for the plan.
type OpKind int

const (
	OpWrite OpKind = iota
	OpFsync
	OpRead
)

// Plan is a deterministic machine-wide fault schedule. Safe for
// concurrent use by multiple devices.
type Plan struct {
	seed    int64
	cfg     Config
	ops     atomic.Int64
	crashed atomic.Bool
}

// NewPlan builds a plan for seed. The same (seed, cfg) always produces
// the same outcome for the same operation index.
func NewPlan(seed int64, cfg Config) *Plan {
	return &Plan{seed: seed, cfg: cfg}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() int64 { return p.seed }

// Config returns the plan's fault mix.
func (p *Plan) Config() Config { return p.cfg }

// Ops returns how many operations have consumed an outcome so far.
func (p *Plan) Ops() int64 { return p.ops.Load() }

// Crashed reports whether the crash point has been reached.
func (p *Plan) Crashed() bool { return p.crashed.Load() }

// Next consumes the next operation slot and returns its outcome. Once
// the crash point fires every later call returns a dead outcome
// (Crash=true, Torn=0): the machine is off.
func (p *Plan) Next(kind OpKind) Outcome {
	if p.crashed.Load() {
		return Outcome{Op: p.ops.Load(), Crash: true}
	}
	i := p.ops.Add(1)
	o := p.At(i, kind)
	if o.Crash {
		p.crashed.Store(true)
	}
	return o
}

// At returns the outcome of operation i (1-based) of the given kind as
// a pure function of the plan's seed and configuration — the replayable
// schedule itself.
func (p *Plan) At(i int64, kind OpKind) Outcome {
	o := Outcome{Op: i}
	if p.cfg.CrashOp > 0 && i >= p.cfg.CrashOp {
		o.Crash = true
		if p.cfg.CrashTorn >= 0 && p.cfg.CrashTorn <= 1 {
			o.Torn = p.cfg.CrashTorn
		} else {
			o.Torn = u01(mix(uint64(p.seed) ^ mix(uint64(i)) ^ 0x7ea2))
		}
		return o
	}
	h := mix(uint64(p.seed) ^ mix(uint64(i)))
	if kind != OpRead && u01(mix(h^0xe1)) < p.cfg.IOErrorP {
		o.Err = true
		return o
	}
	if kind == OpFsync && u01(mix(h^0xf5)) < p.cfg.DropFsyncP {
		o.DropFsync = true
	}
	if p.cfg.StallP > 0 && u01(mix(h^0x57)) < p.cfg.StallP {
		o.Stall = p.cfg.StallDur
	}
	return o
}

// ScheduleDigest hashes the outcomes of the first n operations for both
// write and fsync kinds into one 64-bit digest. Two plans with the same
// seed and config produce the same digest — the byte-identical-schedule
// check the torture harness and tests rely on.
func (p *Plan) ScheduleDigest(n int64) uint64 {
	var d uint64 = 0x9e3779b97f4a7c15
	for i := int64(1); i <= n; i++ {
		for _, k := range []OpKind{OpWrite, OpFsync} {
			o := p.At(i, k)
			d = mix(d ^ encodeOutcome(o))
		}
	}
	return d
}

func encodeOutcome(o Outcome) uint64 {
	v := uint64(o.Op) << 16
	if o.Err {
		v |= 1
	}
	if o.DropFsync {
		v |= 2
	}
	if o.Crash {
		v |= 4
	}
	if o.Stall > 0 {
		v |= 8
	}
	return mix(v ^ uint64(int64(o.Torn*1e9)))
}

// String describes the plan for repro output.
func (p *Plan) String() string {
	return fmt.Sprintf("faultfs.Plan{seed=%d ioErrP=%g dropFsyncP=%g stallP=%g crashOp=%d}",
		p.seed, p.cfg.IOErrorP, p.cfg.DropFsyncP, p.cfg.StallP, p.cfg.CrashOp)
}

// mix is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// hash that keeps outcomes independent across operation indexes.
func mix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// u01 maps a hash to a uniform float in [0, 1).
func u01(h uint64) float64 {
	return float64(h>>11) / (1 << 53)
}

// DeriveSeed derives the seed for iteration i of a multi-crash torture
// run from the run's master seed, deterministically.
func DeriveSeed(master int64, i int) int64 {
	return int64(mix(uint64(master) ^ mix(uint64(i)+0x5eed)))
}
