package faultfs

import (
	"testing"
	"time"
)

func TestPlanDeterminism(t *testing.T) {
	cfg := Config{IOErrorP: 0.1, DropFsyncP: 0.05, StallP: 0.02, StallDur: time.Millisecond, CrashOp: 500, CrashTorn: -1}
	a := NewPlan(42, cfg)
	b := NewPlan(42, cfg)
	if a.ScheduleDigest(2000) != b.ScheduleDigest(2000) {
		t.Fatal("same seed produced different schedules")
	}
	for i := int64(1); i <= 1000; i++ {
		for _, k := range []OpKind{OpWrite, OpFsync, OpRead} {
			if a.At(i, k) != b.At(i, k) {
				t.Fatalf("op %d kind %d differs across identical plans", i, k)
			}
		}
	}
	if NewPlan(43, cfg).ScheduleDigest(2000) == a.ScheduleDigest(2000) {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestPlanCrashPoint(t *testing.T) {
	p := NewPlan(7, Config{CrashOp: 3, CrashTorn: 0.5})
	if o := p.Next(OpWrite); o.Crash || o.Err {
		t.Fatalf("op 1 should be benign: %+v", o)
	}
	if o := p.Next(OpWrite); o.Crash {
		t.Fatalf("op 2 should be benign: %+v", o)
	}
	o := p.Next(OpFsync)
	if !o.Crash || o.Torn != 0.5 {
		t.Fatalf("op 3 should crash with torn 0.5: %+v", o)
	}
	if !p.Crashed() {
		t.Fatal("plan not marked crashed")
	}
	// Every later op is dead.
	if o := p.Next(OpWrite); !o.Crash || o.Torn != 0 {
		t.Fatalf("post-crash op should be dead: %+v", o)
	}
}

func TestPlanErrorAndDropRates(t *testing.T) {
	p := NewPlan(99, Config{IOErrorP: 0.2, DropFsyncP: 0.3})
	errs, drops, okFsyncs := 0, 0, 0
	const n = 20000
	for i := int64(1); i <= n; i++ {
		if p.At(i, OpWrite).Err {
			errs++
		}
		o := p.At(i, OpFsync)
		if o.DropFsync && o.Err {
			t.Fatal("an op cannot both fail and drop")
		}
		if !o.Err {
			okFsyncs++
			if o.DropFsync {
				drops++
			}
		}
	}
	if f := float64(errs) / n; f < 0.17 || f > 0.23 {
		t.Fatalf("error rate %.3f, want ~0.2", f)
	}
	// Drops are sampled after the error gate, so measure DropFsyncP
	// among non-erroring fsyncs.
	if f := float64(drops) / float64(okFsyncs); f < 0.27 || f > 0.33 {
		t.Fatalf("drop rate %.3f, want ~0.3", f)
	}
}

func TestPlanReadsNeverError(t *testing.T) {
	p := NewPlan(1, Config{IOErrorP: 1})
	for i := int64(1); i <= 100; i++ {
		if p.At(i, OpRead).Err {
			t.Fatal("reads must not draw transient write errors")
		}
	}
}

func TestDeriveSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		s := DeriveSeed(11, i)
		if seen[s] {
			t.Fatalf("duplicate derived seed at %d", i)
		}
		seen[s] = true
	}
}
