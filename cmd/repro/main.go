// Command repro regenerates the paper's tables and figures.
//
// Usage:
//
//	repro                  # run every experiment (slow: ~15 minutes)
//	repro -exp fig2,table4 # run selected experiments
//	repro -quick           # scaled-down counts for a fast sanity pass
//	repro -seed 7 -out results.txt
//
// Each experiment prints the paper-style rows; EXPERIMENTS.md records a
// reference run with commentary on how the shapes compare to the paper.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"vats"
)

func main() {
	var (
		expFlag   = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		quick     = flag.Bool("quick", false, "scaled-down counts for a fast pass")
		seed      = flag.Int64("seed", 11, "random seed")
		out       = flag.String("out", "", "also write the report to this file")
		obsAddr   = flag.String("obs", "", "serve live /metrics + /debug on this address (e.g. :9090)")
		sloP99    = flag.Float64("slo-p99", 0, "p99 latency SLO in ms for the variance watchdog (0 = off)")
		obsBudget = flag.Float64("obs-budget", 0.01, "span-capture overhead budget as a fraction of one core (negative = unlimited)")
	)
	flag.Parse()

	if *obsAddr != "" {
		ob := vats.Observability()
		ob.Watchdog.SetSLO(vats.SLOConfig{P99TargetMs: *sloP99})
		ob.Sampler.SetBudget(*obsBudget)
		srv, err := vats.ServeObservability(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability: %s/metrics /debug/variance /debug/anomalies\n", srv.URL())
	}

	ids := vats.ExperimentIDs()
	if *expFlag != "" {
		ids = strings.Split(*expFlag, ",")
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		w = io.MultiWriter(os.Stdout, f)
	}

	opts := vats.ExperimentOpts{Seed: *seed}
	if *quick {
		opts.Count = 300
		opts.Clients = 8
	}

	fmt.Fprintf(w, "vats reproduction — %s (seed %d, quick=%v)\n",
		time.Now().Format(time.RFC3339), *seed, *quick)
	failed := 0
	for _, id := range ids {
		start := time.Now()
		exp, err := vats.RunExperiment(strings.TrimSpace(id), opts)
		if err != nil {
			fmt.Fprintf(w, "\n== %s: ERROR: %v\n", id, err)
			failed++
			continue
		}
		fmt.Fprintf(w, "\n== %s — %s (%.1fs)\n%s", exp.ID, exp.Title,
			time.Since(start).Seconds(), exp.Text)
	}
	if failed > 0 {
		os.Exit(1)
	}
}
