// Command vatsload drives a running vatsd with an open-loop Poisson
// arrival stream over pipelined connections — the load shape that
// exposes queueing delay (closed-loop clients self-throttle and hide
// it). It can additionally hold hundreds of thousands of idle logical
// sessions open to exercise sessions-at-scale, and prints per-class
// latency histograms.
//
// Usage:
//
//	vatsload -addr 127.0.0.1:4750 -rate 2000 -duration 5s -setup
//	vatsload -addr 127.0.0.1:4750 -rate 500 -sessions 100000 -json
//
// Exit status is nonzero if the run saw any protocol errors, so CI
// smoke jobs can assert a clean wire.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"vats"
)

func main() {
	var (
		network   = flag.String("network", "tcp", `server network ("tcp" or "unix")`)
		addr      = flag.String("addr", "127.0.0.1:4750", "server address")
		conns     = flag.Int("conns", 4, "connections to pipeline over")
		rate      = flag.Float64("rate", 1000, "target arrival rate, requests/second")
		duration  = flag.Duration("duration", 2*time.Second, "how long to generate arrivals")
		warmup    = flag.Duration("warmup", 0, "exclude responses before this offset from latency stats")
		sessions  = flag.Int("sessions", 0, "idle logical sessions to hold open for the whole run")
		writeFrac = flag.Float64("write-frac", 0, "fraction of requests that are updates")
		classMix  = flag.String("class-mix", "", `high,normal,low weights (e.g. "0.2,0.4,0.4"; empty = all normal)`)
		table     = flag.String("table", "load", "working-set table name")
		keys      = flag.Uint64("keys", 1024, "working-set key count")
		setup     = flag.Bool("setup", false, "create and seed the table before the run")
		seed      = flag.Int64("seed", 1, "arrival/key RNG seed")
		asJSON    = flag.Bool("json", false, "emit the full result as JSON")
	)
	flag.Parse()

	cfg := vats.LoadConfig{
		Network:      *network,
		Addr:         *addr,
		Conns:        *conns,
		Rate:         *rate,
		Duration:     *duration,
		Warmup:       *warmup,
		IdleSessions: *sessions,
		WriteFrac:    *writeFrac,
		Table:        *table,
		Keys:         *keys,
		Setup:        *setup,
		Seed:         *seed,
	}
	if *classMix != "" {
		mix, err := parseMix(*classMix)
		if err != nil {
			fatalf("bad -class-mix: %v", err)
		}
		cfg.ClassMix = mix
	}

	res, err := vats.RunLoad(cfg)
	if err != nil {
		fatalf("%v", err)
	}

	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fatalf("encode: %v", err)
		}
	} else {
		fmt.Printf("sent=%d ok=%d not-found=%d shed=%d retry=%d errors=%d proto-errors=%d elapsed=%v\n",
			res.Sent, res.OK, res.NotFound, res.Shed, res.Retry, res.Errors, res.ProtoErrors,
			res.Elapsed.Round(time.Millisecond))
		fmt.Printf("by class: sent=%v shed=%v idle-sessions=%d\n",
			res.SentByClass, res.ShedByClass, res.IdleOpen)
		fmt.Printf("admitted latency ms: p50=%.2f p95=%.2f p99=%.2f max=%.2f (n=%d)\n",
			res.Latency.P50, res.Latency.P95, res.Latency.P99, res.Latency.Max, res.Latency.N)
		if res.Shed > 0 {
			fmt.Printf("shed latency ms:     p50=%.2f p95=%.2f p99=%.2f max=%.2f (n=%d)\n",
				res.ShedLatency.P50, res.ShedLatency.P95, res.ShedLatency.P99,
				res.ShedLatency.Max, res.ShedLatency.N)
		}
	}

	if res.ProtoErrors != 0 {
		fatalf("%d protocol errors", res.ProtoErrors)
	}
}

func parseMix(s string) ([3]float64, error) {
	var mix [3]float64
	parts := strings.Split(s, ",")
	if len(parts) != len(mix) {
		return mix, fmt.Errorf("want 3 comma-separated weights, got %d", len(parts))
	}
	for i, p := range parts {
		w, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || w < 0 {
			return mix, fmt.Errorf("weight %q", p)
		}
		mix[i] = w
	}
	return mix, nil
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vatsload: "+format+"\n", args...)
	os.Exit(1)
}
