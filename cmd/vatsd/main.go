// Command vatsd serves the vats wire protocol over TCP (or a unix
// socket): length-prefixed CRC-framed binary frames, pipelined
// requests, and multiplexed per-connection session streams, mapped
// onto the engine's Session and SnapshotTxn APIs. Admission control
// with per-class load shedding keeps the admitted queue-wait p99 at a
// configured target (docs/SERVER.md has the protocol and model).
//
// Usage:
//
//	vatsd -addr 127.0.0.1:4750 -slots 8 -p99-target 20ms
//	vatsd -network unix -addr /tmp/vatsd.sock -no-shed
//
// vatsd runs until SIGINT/SIGTERM, then drains and reports final
// admission statistics.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vats"
)

func main() {
	var (
		network      = flag.String("network", "tcp", `listener network ("tcp" or "unix")`)
		addr         = flag.String("addr", "127.0.0.1:4750", "listen address")
		slots        = flag.Int("slots", 0, "concurrent execution slots (0 = default)")
		queueCap     = flag.Int("queue-cap", 0, "hard admission queue bound (0 = default)")
		p99Target    = flag.Duration("p99-target", 20*time.Millisecond, "queue-wait p99 the feedback controller holds (0 disables feedback)")
		window       = flag.Duration("window", 0, "feedback measurement window (0 = default)")
		noShed       = flag.Bool("no-shed", false, "disable load shedding (unbounded queueing)")
		scanLimit    = flag.Int("scan-limit", 0, "max rows per scan response (0 = default)")
		simExecDelay = flag.Duration("sim-exec-delay", 0, "fixed simulated execution cost per admitted request (benchmarking)")
		bufferPages  = flag.Int("buffer-pages", 0, "buffer pool pages (0 = engine default)")
		lockTimeout  = flag.Duration("lock-timeout", 0, "lock wait bound (0 = engine default)")
		parallelLog  = flag.Bool("parallel-log", false, "enable two-stream parallel logging")
		seed         = flag.Int64("seed", 1, "simulated-device seed")
		statsEvery   = flag.Duration("stats", 0, "print admission stats at this period (0 = only at exit)")
	)
	flag.Parse()

	db, err := vats.Open(vats.Options{
		BufferPages: *bufferPages,
		LockTimeout: *lockTimeout,
		ParallelLog: *parallelLog,
		Seed:        *seed,
	})
	if err != nil {
		fatalf("open engine: %v", err)
	}
	defer db.Close()

	srv := vats.NewServer(db, vats.ServerConfig{
		Admit: vats.AdmitConfig{
			Slots:       *slots,
			QueueCap:    *queueCap,
			TargetP99:   *p99Target,
			Window:      *window,
			DisableShed: *noShed,
		},
		ScanLimit:    *scanLimit,
		SimExecDelay: *simExecDelay,
	})
	bound, err := srv.Listen(*network, *addr)
	if err != nil {
		fatalf("listen: %v", err)
	}
	fmt.Printf("vatsd listening on %s://%s (slots=%d queue-cap=%d p99-target=%v shed=%v)\n",
		bound.Network(), bound.String(), srv.Admitter().Stats().Slots,
		srv.Admitter().Stats().QueueCap, *p99Target, !*noShed)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)

	var tick <-chan time.Time
	if *statsEvery > 0 {
		t := time.NewTicker(*statsEvery)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case s := <-sig:
			fmt.Printf("vatsd: %v, shutting down\n", s)
			srv.Close()
			printStats(srv)
			return
		case <-tick:
			printStats(srv)
		}
	}
}

func printStats(srv *vats.Server) {
	st := srv.Admitter().Stats()
	fmt.Printf("conns=%d sessions=%d admitted=%d shed=%v eff-cap=%d window-p99=%v\n",
		srv.Conns(), srv.Sessions(), st.Admitted, st.Shed, st.EffectiveCap, st.WindowP99)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "vatsd: "+format+"\n", args...)
	os.Exit(1)
}
