// Command vatsbench runs one workload against one engine configuration
// and prints latency statistics — the building block the experiments
// compose.
//
// Usage:
//
//	vatsbench -workload tpcc -sched VATS -clients 32 -rate 800 -count 2000
//	vatsbench -workload ycsb -sched FCFS -flush lazywrite
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"vats"
)

func main() {
	var (
		wlName     = flag.String("workload", "tpcc", "tpcc | seats | tatp | epinions | ycsb")
		sched      = flag.String("sched", "FCFS", "FCFS | VATS | RS")
		flush      = flag.String("flush", "eager", "eager | lazyflush | lazywrite")
		lru        = flag.String("lru", "eager", "eager | lazy (LLU)")
		par        = flag.Bool("parallel-log", false, "two-stream parallel logging")
		clients    = flag.Int("clients", 16, "concurrent terminals")
		rate       = flag.Float64("rate", 0, "offered load txn/s (0 = closed loop)")
		count      = flag.Int("count", 1000, "transactions to measure")
		pages      = flag.Int("buffer", 4096, "buffer pool pages")
		shards     = flag.Int("buffer-shards", 0, "buffer pool instances (0 = one)")
		seed       = flag.Int64("seed", 1, "random seed")
		obsAddr    = flag.String("obs", "", "serve live /metrics + /debug on this address (e.g. :9090)")
		sloP99     = flag.Float64("slo-p99", 0, "p99 latency SLO in ms for the variance watchdog (0 = off)")
		obsBudget  = flag.Float64("obs-budget", 0.01, "span-capture overhead budget as a fraction of one core (negative = unlimited)")
		scanners   = flag.Int("scanners", 0, "concurrent full-table snapshot scanners running alongside the workload (the HTAP scan-under-writers mode)")
		scanIso    = flag.String("scan-isolation", "readcommitted", "readcommitted | snapshot: isolation for Txn.Scan/IndexScan inside workload transactions")
		parts      = flag.Int("partitions", 0, "run the horizontally partitioned engine with N partitions (0 = plain engine; tpcc only)")
		xwh        = flag.Float64("xwarehouse", 0, "cross-warehouse (multi-partition) fraction for partitioned tpcc Payments and NewOrder remote supply, in [0,1]")
		warehouses = flag.Int("warehouses", 0, "tpcc warehouse count for the partitioned run (0 = workload default)")
	)
	flag.Parse()

	if *obsAddr != "" {
		ob := vats.Observability()
		ob.Watchdog.SetSLO(vats.SLOConfig{P99TargetMs: *sloP99})
		ob.Sampler.SetBudget(*obsBudget)
		srv, err := vats.ServeObservability(*obsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer srv.Close()
		fmt.Printf("observability: %s/metrics /debug/variance /debug/anomalies\n", srv.URL())
	}

	opts := vats.Options{
		BufferPages:  *pages,
		BufferShards: *shards,
		ParallelLog:  *par,
		Seed:         *seed,
	}
	switch strings.ToUpper(*sched) {
	case "VATS":
		opts.Scheduler = vats.VATS
	case "RS":
		opts.Scheduler = vats.RS
	}
	switch strings.ToLower(*flush) {
	case "lazyflush":
		opts.Flush = vats.LazyFlush
	case "lazywrite":
		opts.Flush = vats.LazyWrite
	}
	if strings.ToLower(*lru) == "lazy" {
		opts.LRU = vats.LazyLRU
	}
	switch strings.ToLower(*scanIso) {
	case "readcommitted":
	case "snapshot":
		opts.ScanIsolation = vats.SnapshotScans
	default:
		fmt.Fprintf(os.Stderr, "unknown -scan-isolation %q\n", *scanIso)
		os.Exit(2)
	}

	if *parts > 0 {
		if *wlName != "tpcc" {
			fmt.Fprintln(os.Stderr, "-partitions supports -workload tpcc only")
			os.Exit(2)
		}
		runPartitioned(opts, *parts, *warehouses, *xwh, *sched, *clients, *rate, *count, *seed)
		if *obsAddr != "" {
			printAttribution(vats.Observability())
		}
		return
	}

	wl, err := vats.NewWorkload(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	db, err := vats.Open(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()

	// The scan-under-writers mode: -scanners N runs N goroutines that
	// loop lock-free full-table snapshot scans over every workload
	// table for the duration of the benchmark, so the reported writer
	// latencies are measured under sustained analytic load.
	var stopScan func() (rows, rounds int64)
	if *scanners > 0 {
		stopScan = startScanners(db, *scanners)
	}

	res, err := vats.RunBenchmark(db, wl, vats.BenchConfig{
		Clients: *clients,
		Rate:    *rate,
		Count:   *count,
		Warmup:  *count / 10,
		Seed:    *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var scanRows, scanRounds int64
	if stopScan != nil {
		scanRows, scanRounds = stopScan()
	}

	fmt.Printf("workload=%s scheduler=%s flush=%s lru=%s clients=%d rate=%.0f\n",
		*wlName, strings.ToUpper(*sched), *flush, *lru, *clients, *rate)
	fmt.Printf("overall: %s\n", res.Overall.String())
	fmt.Printf("throughput: %.0f txn/s, errors: %d\n", res.Throughput, res.Errors)

	tags := make([]string, 0, len(res.PerTag))
	for tag := range res.PerTag {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	fmt.Printf("\n%-22s %8s %10s %10s %10s\n", "transaction type", "n", "mean ms", "p99 ms", "cov")
	for _, tag := range tags {
		s := res.PerTag[tag]
		fmt.Printf("%-22s %8d %10.3f %10.3f %10.2f\n", tag, s.N, s.Mean, s.P99, s.CoV)
	}

	ls := db.Locks().Stats()
	fmt.Printf("\nlocks: acquires=%d waits=%d waitTime=%v deadlocks=%d timeouts=%d\n",
		ls.Acquires, ls.Waits, ls.WaitTime, ls.Deadlocks, ls.Timeouts)
	ps := db.Pool().Stats()
	fmt.Printf("buffer: hits=%d misses=%d evictions=%d makeYoung=%d deferred=%d\n",
		ps.Hits, ps.Misses, ps.Evictions, ps.MakeYoungs, ps.Deferred)
	ws := db.Log().Stats()
	fmt.Printf("wal: appends=%d flushes=%d grouped=%d bytes=%d\n",
		ws.Appends, ws.Flushes, ws.GroupedCommits, ws.Bytes)
	marks := db.Log().StreamWatermarks()
	sm := make([]string, len(marks))
	for i, wm := range marks {
		sm[i] = fmt.Sprintf("%d", wm)
	}
	fmt.Printf("wal: durable-watermark=%d stream-watermarks=[%s]\n",
		db.Log().DurableWatermark(), strings.Join(sm, " "))
	if ws.Flushes > 0 {
		fmt.Printf("wal: records/flush=%.1f\n", float64(ws.Appends)/float64(ws.Flushes))
	}
	if *scanners > 0 {
		fmt.Printf("scanners: n=%d rounds=%d rows=%d\n", *scanners, scanRounds, scanRows)
		var versions, walks int64
		for _, t := range db.Tables() {
			st := t.MVCCStats()
			versions += st.Versions
			walks += st.ChainWalks
		}
		fmt.Printf("mvcc: live-versions=%d chain-walks=%d low-water=%d\n",
			versions, walks, db.Clock().LowWater())
	}

	if *obsAddr != "" {
		printAttribution(vats.Observability())
	}
}

// runPartitioned drives partitioned TPC-C: N independent partitions
// hash-routed by warehouse, with xwh controlling the multi-partition
// (cross-warehouse) transaction fraction. It reports the usual latency
// summary plus the router's single/multi split and the per-partition
// throughput skew.
func runPartitioned(opts vats.Options, parts, warehouses int, xwh float64, sched string, clients int, rate float64, count int, seed int64) {
	opts.Partitions = parts
	pdb, err := vats.OpenPartitioned(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer pdb.Close()

	wl := vats.NewPartitionedTPCC(warehouses, xwh, xwh)
	res, err := vats.RunPartitionedBenchmark(pdb, wl, vats.BenchConfig{
		Clients: clients,
		Rate:    rate,
		Count:   count,
		Warmup:  count / 10,
		Seed:    seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload=tpcc-part scheduler=%s partitions=%d xwarehouse=%.2f clients=%d rate=%.0f\n",
		strings.ToUpper(sched), parts, xwh, clients, rate)
	fmt.Printf("overall: %s\n", res.Overall.String())
	fmt.Printf("throughput: %.0f txn/s, errors: %d\n", res.Throughput, res.Errors)

	tags := make([]string, 0, len(res.PerTag))
	for tag := range res.PerTag {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	fmt.Printf("\n%-22s %8s %10s %10s %10s\n", "transaction type", "n", "mean ms", "p99 ms", "cov")
	for _, tag := range tags {
		s := res.PerTag[tag]
		fmt.Printf("%-22s %8d %10.3f %10.3f %10.2f\n", tag, s.N, s.Mean, s.P99, s.CoV)
	}

	st := pdb.Stats()
	total := st.Single + st.Multi
	ratio := 0.0
	if total > 0 {
		ratio = float64(st.Multi) / float64(total)
	}
	fmt.Printf("\nrouting: single=%d multi=%d (%.1f%% multi) 2pc-aborts=%d\n",
		st.Single, st.Multi, 100*ratio, st.MultiAborts)

	// Per-partition participation skew: each partition's share of all
	// transaction participations, plus max/mean as the skew figure.
	var sum, max int64
	for _, n := range st.PerPartition {
		sum += n
		if n > max {
			max = n
		}
	}
	fmt.Printf("%-12s %12s %8s\n", "partition", "txns", "share")
	for p, n := range st.PerPartition {
		share := 0.0
		if sum > 0 {
			share = float64(n) / float64(sum)
		}
		fmt.Printf("%-12d %12d %7.1f%%\n", p, n, 100*share)
	}
	if sum > 0 && len(st.PerPartition) > 0 {
		mean := float64(sum) / float64(len(st.PerPartition))
		fmt.Printf("skew: max/mean = %.2f\n", float64(max)/mean)
	}

	for p := 0; p < pdb.Partitions(); p++ {
		e := pdb.Partition(p)
		ls := e.Locks().Stats()
		ws := e.Log().Stats()
		fmt.Printf("partition %d: lock-waits=%d deadlocks=%d timeouts=%d wal-appends=%d wal-flushes=%d\n",
			p, ls.Waits, ls.Deadlocks, ls.Timeouts, ws.Appends, ws.Flushes)
	}
}

// startScanners launches n goroutines that loop full-table snapshot
// scans over every table until the returned stop function is called;
// it reports total rows visited and complete all-table rounds.
func startScanners(db *vats.DB, n int) func() (rows, rounds int64) {
	var stop atomic.Bool
	var rows, rounds atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := db.NewSession()
			for !stop.Load() {
				for _, t := range db.Tables() {
					snap := s.BeginSnapshot()
					seen := 0
					snap.Scan(t, 0, ^uint64(0), func(uint64, []byte) bool {
						seen++
						return !stop.Load()
					})
					snap.Close()
					rows.Add(int64(seen))
				}
				rounds.Add(1)
			}
		}()
	}
	return func() (int64, int64) {
		stop.Store(true)
		wg.Wait()
		return rows.Load(), rounds.Load()
	}
}

// printAttribution summarizes the live variance-attribution state after
// the run: what the latency variance decomposed into over the recent
// window horizon, what the sampling controller settled on, and any SLO
// anomalies the watchdog raised.
func printAttribution(ob *vats.Obs) {
	snap := ob.Variance.Snapshot()
	if snap.N == 0 {
		return
	}
	fmt.Printf("\nvariance attribution (last %d window(s), %d txns): total %.3f ms², explained %.0f%%\n",
		snap.Windows, snap.N, snap.Variance, 100*snap.ExplainedShare)
	for _, f := range snap.TopFactors(5) {
		fmt.Printf("  %-28s %10.4f ms²  %6.1f%% of total\n",
			strings.Join(f.Functions, "+"), f.Value, 100*f.FracOfTotal)
	}
	st := ob.Sampler.State()
	fmt.Printf("sampling: modulus=%d rate=%.0f txn/s est-overhead=%.3f%% (budget %.1f%%)\n",
		st.Modulus, st.RateTxnS, 100*st.EstimatedFrac, 100*st.BudgetFrac)
	if as := ob.Watchdog.Anomalies(5); len(as) > 0 {
		fmt.Printf("anomalies (%d total, newest first):\n", ob.Watchdog.Total())
		for _, a := range as {
			fmt.Printf("  [%s] %s\n", a.Kind, a.Msg)
		}
	}
}
