// Command torture runs the deterministic crash & fault-injection
// campaign against the engine's recovery path (see internal/torture).
//
// Each round i uses seed = -seed + i, so a failing round is replayed
// exactly by the printed repro command. The process exits non-zero on
// the first round with violations.
//
// Usage:
//
//	go run ./cmd/torture -seed 1 -crashes 1000
//	go run ./cmd/torture -seed 20260805 -crashes 10000 -duration 10m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vats/internal/torture"
)

func main() {
	seed := flag.Int64("seed", 1, "master seed; round i runs with seed+i")
	crashes := flag.Int("crashes", 1000, "number of rounds (simulated machine lives)")
	duration := flag.Duration("duration", 0, "optional wall-clock budget; 0 = unlimited")
	verbose := flag.Bool("v", false, "print every round's summary")
	partitioned := flag.Bool("partitioned", false, "torture the partitioned engine's cross-partition (2PC) commit path instead of the single-engine recovery path")
	backend := flag.String("backend", "sim", "log-device backend: sim (simulated latency) or file (real files in a temp dir)")
	flag.Parse()
	if *backend != "sim" && *backend != "file" {
		fmt.Fprintf(os.Stderr, "unknown -backend %q (want sim or file)\n", *backend)
		os.Exit(2)
	}

	if *partitioned {
		runPartitionedCampaign(*seed, *crashes, *duration, *verbose)
		return
	}

	start := time.Now()
	var crashed, clean, acked, lies int
	for i := 0; i < *crashes; i++ {
		if *duration > 0 && time.Since(start) > *duration {
			fmt.Printf("duration budget reached after %d rounds\n", i)
			break
		}
		roundSeed := *seed + int64(i)
		rcfg := torture.FromSeed(roundSeed)
		rcfg.Backend = *backend
		res := torture.Run(rcfg)
		if res.Crashed {
			crashed++
		} else {
			clean++
		}
		acked += res.Acked
		lies += res.Lies
		if *verbose {
			fmt.Printf("seed %d: backend=%s policy=%v parallel=%v ckpt=%v online=%v crashop=%d ops=%d crashed=%v acked=%d unfinished=%d lies=%d entries=%d\n",
				roundSeed, *backend, res.Cfg.Policy, res.Cfg.Parallel, res.Cfg.Checkpoints, res.Cfg.ConcurrentCkpt, res.Cfg.CrashOp,
				res.Ops, res.Crashed, res.Acked, res.Unfinished, res.Lies, res.Entries)
		}
		if len(res.Violations) > 0 {
			fmt.Fprintf(os.Stderr, "seed %d: %d invariant violation(s):\n", roundSeed, len(res.Violations))
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "  - %s\n", v)
			}
			fmt.Fprintf(os.Stderr, "REPRO: %s\n", res.ReproCmd())
			os.Exit(1)
		}
		if n := i + 1; n%100 == 0 {
			fmt.Printf("%d/%d rounds ok (%d crashed, %d clean, %d commits, %d fsync lies, %s)\n",
				n, *crashes, crashed, clean, acked, lies, time.Since(start).Round(time.Millisecond))
		}
	}
	fmt.Printf("PASS: %d rounds, %d crashed, %d clean, %d commits audited, %d fsync lies survived, %s\n",
		crashed+clean, crashed, clean, acked, lies, time.Since(start).Round(time.Millisecond))
}

// runPartitionedCampaign drives the cross-partition commit torture: each
// round is an N-way partitioned machine life with a shared fault plan,
// audited for all-or-nothing visibility across every crash point in the
// 2PC prepare/decide/apply windows (see internal/torture/partition.go).
func runPartitionedCampaign(seed int64, crashes int, duration time.Duration, verbose bool) {
	start := time.Now()
	var crashed, clean, acked, multi, decided, inDoubt, atRisk int
	for i := 0; i < crashes; i++ {
		if duration > 0 && time.Since(start) > duration {
			fmt.Printf("duration budget reached after %d rounds\n", i)
			break
		}
		roundSeed := seed + int64(i)
		res := torture.RunPartitioned(torture.PartFromSeed(roundSeed))
		if res.Crashed {
			crashed++
		} else {
			clean++
		}
		acked += res.Acked
		multi += res.Multi
		decided += res.Decided
		inDoubt += res.InDoubt
		atRisk += res.AtRisk
		if verbose {
			fmt.Printf("seed %d: parts=%d policy=%v crashop=%d ops=%d crashed=%v loaded=%v acked=%d multi=%d decided=%d indoubt=%d atrisk=%d\n",
				roundSeed, res.Cfg.Partitions, res.Cfg.Policy, res.Cfg.CrashOp, res.Ops,
				res.Crashed, res.LoadDone, res.Acked, res.Multi, res.Decided, res.InDoubt, res.AtRisk)
		}
		if len(res.Violations) > 0 {
			fmt.Fprintf(os.Stderr, "seed %d: %d invariant violation(s):\n", roundSeed, len(res.Violations))
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "  - %s\n", v)
			}
			fmt.Fprintf(os.Stderr, "REPRO: %s\n", res.ReproCmd())
			os.Exit(1)
		}
		if n := i + 1; n%100 == 0 {
			fmt.Printf("%d/%d rounds ok (%d crashed, %d clean, %d acked, %d multi, %d decided, %d in-doubt, %s)\n",
				n, crashes, crashed, clean, acked, multi, decided, inDoubt, time.Since(start).Round(time.Millisecond))
		}
	}
	fmt.Printf("PASS: %d partitioned rounds, %d crashed, %d clean, %d acked, %d multi-partition txns, %d decided gtids, %d in-doubt gtids resolved to abort, %d at-risk (forgiven), %s\n",
		crashed+clean, crashed, clean, acked, multi, decided, inDoubt, atRisk, time.Since(start).Round(time.Millisecond))
}
