// Command torture runs the deterministic crash & fault-injection
// campaign against the engine's recovery path (see internal/torture).
//
// Each round i uses seed = -seed + i, so a failing round is replayed
// exactly by the printed repro command. The process exits non-zero on
// the first round with violations.
//
// Usage:
//
//	go run ./cmd/torture -seed 1 -crashes 1000
//	go run ./cmd/torture -seed 20260805 -crashes 10000 -duration 10m
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vats/internal/torture"
)

func main() {
	seed := flag.Int64("seed", 1, "master seed; round i runs with seed+i")
	crashes := flag.Int("crashes", 1000, "number of rounds (simulated machine lives)")
	duration := flag.Duration("duration", 0, "optional wall-clock budget; 0 = unlimited")
	verbose := flag.Bool("v", false, "print every round's summary")
	flag.Parse()

	start := time.Now()
	var crashed, clean, acked, lies int
	for i := 0; i < *crashes; i++ {
		if *duration > 0 && time.Since(start) > *duration {
			fmt.Printf("duration budget reached after %d rounds\n", i)
			break
		}
		roundSeed := *seed + int64(i)
		res := torture.Run(torture.FromSeed(roundSeed))
		if res.Crashed {
			crashed++
		} else {
			clean++
		}
		acked += res.Acked
		lies += res.Lies
		if *verbose {
			fmt.Printf("seed %d: policy=%v parallel=%v ckpt=%v crashop=%d ops=%d crashed=%v acked=%d unfinished=%d lies=%d entries=%d\n",
				roundSeed, res.Cfg.Policy, res.Cfg.Parallel, res.Cfg.Checkpoints, res.Cfg.CrashOp,
				res.Ops, res.Crashed, res.Acked, res.Unfinished, res.Lies, res.Entries)
		}
		if len(res.Violations) > 0 {
			fmt.Fprintf(os.Stderr, "seed %d: %d invariant violation(s):\n", roundSeed, len(res.Violations))
			for _, v := range res.Violations {
				fmt.Fprintf(os.Stderr, "  - %s\n", v)
			}
			fmt.Fprintf(os.Stderr, "REPRO: %s\n", res.ReproCmd())
			os.Exit(1)
		}
		if n := i + 1; n%100 == 0 {
			fmt.Printf("%d/%d rounds ok (%d crashed, %d clean, %d commits, %d fsync lies, %s)\n",
				n, *crashes, crashed, clean, acked, lies, time.Since(start).Round(time.Millisecond))
		}
	}
	fmt.Printf("PASS: %d rounds, %d crashed, %d clean, %d commits audited, %d fsync lies survived, %s\n",
		crashed+clean, crashed, clean, acked, lies, time.Since(start).Round(time.Millisecond))
}
