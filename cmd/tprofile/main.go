// Command tprofile runs TProfiler against a workload and prints the
// variance tree and the top-k factors — what the paper's Tables 1 and 2
// report for MySQL and Postgres.
//
// Usage:
//
//	tprofile -workload tpcc -clients 32 -rate 700 -count 1500 -topk 8
package main

import (
	"flag"
	"fmt"
	"os"

	"vats"
)

func main() {
	var (
		wlName  = flag.String("workload", "tpcc", "tpcc | seats | tatp | epinions | ycsb")
		clients = flag.Int("clients", 16, "concurrent terminals")
		rate    = flag.Float64("rate", 0, "offered load txn/s (0 = closed loop)")
		count   = flag.Int("count", 800, "transactions to profile")
		topk    = flag.Int("topk", 8, "factors to report")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()

	wl, err := vats.NewWorkload(*wlName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	prof := vats.NewProfiler()
	db, err := vats.Open(vats.Options{Profiler: prof, Seed: *seed})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer db.Close()

	res, err := vats.RunBenchmark(db, wl, vats.BenchConfig{
		Clients: *clients, Rate: *rate, Count: *count, Warmup: *count / 10, Seed: *seed,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("profiled %d transactions of %s: %s\n\n", prof.TxnCount(), *wlName, res.Overall.String())
	fmt.Printf("variance tree:\n%s\n", prof.Report())
	fmt.Printf("top %d factors by score (specificity × variance):\n", *topk)
	for _, f := range prof.TopFactors(*topk) {
		fmt.Printf("  %s\n", f.String())
	}
}
