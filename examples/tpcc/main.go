// TPC-C: run the scaled TPC-C benchmark at a fixed offered load and
// print the per-transaction-type latency profile — the paper's §7.1
// methodology in miniature.
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"vats"
)

func main() {
	var (
		sched   = flag.String("sched", "VATS", "FCFS | VATS | RS")
		clients = flag.Int("clients", 16, "terminals")
		rate    = flag.Float64("rate", 500, "offered load txn/s")
		count   = flag.Int("count", 1000, "transactions")
	)
	flag.Parse()

	opts := vats.Options{Seed: 1}
	switch *sched {
	case "VATS":
		opts.Scheduler = vats.VATS
	case "RS":
		opts.Scheduler = vats.RS
	}
	db, err := vats.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	wl, err := vats.NewWorkload("tpcc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("loading TPC-C and running %d transactions at %.0f txn/s under %s...\n",
		*count, *rate, *sched)
	res, err := vats.RunBenchmark(db, wl, vats.BenchConfig{
		Clients: *clients,
		Rate:    *rate,
		Count:   *count,
		Warmup:  *count / 10,
		Seed:    7,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\noverall: %s\n", res.Overall.String())
	fmt.Printf("throughput %.0f txn/s, %d errors\n\n", res.Throughput, res.Errors)
	fmt.Printf("%-14s %6s %10s %10s %10s %8s\n", "type", "n", "mean ms", "p95 ms", "p99 ms", "σ/mean")
	var tags []string
	for tag := range res.PerTag {
		tags = append(tags, tag)
	}
	sort.Strings(tags)
	for _, tag := range tags {
		s := res.PerTag[tag]
		fmt.Printf("%-14s %6d %10.3f %10.3f %10.3f %8.2f\n",
			tag, s.N, s.Mean, s.P95, s.P99, s.CoV)
	}

	ls := db.Locks().Stats()
	fmt.Printf("\nlock manager: %d acquires, %d waits (%.1fms avg wait), %d deadlocks\n",
		ls.Acquires, ls.Waits,
		float64(ls.WaitTime.Milliseconds())/float64(max(1, ls.Waits)), ls.Deadlocks)
}

func max(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
