// Banking: a contended transfer workload comparing FCFS and VATS lock
// scheduling live — the paper's §5 in thirty lines of application code.
//
// A few hot accounts receive most transfers, so transactions queue on
// their record locks; the scheduler decides who goes next. The demo
// prints mean / p99 / variance under both policies.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"vats"
)

const (
	accounts     = 20
	hotAccounts  = 3 // most transfers touch these
	workers      = 24
	perWorker    = 60
	initialFunds = 1_000
)

func main() {
	for _, policy := range []vats.SchedulerPolicy{vats.FCFS, vats.VATS} {
		summary, total := run(policy)
		fmt.Printf("%-5s mean=%7.2fms p99=%8.2fms variance=%9.2f  (funds check: %d)\n",
			policy, summary.Mean, summary.P99, summary.Variance, total)
	}
}

func run(policy vats.SchedulerPolicy) (vats.Summary, int64) {
	db, err := vats.Open(vats.Options{Scheduler: policy, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	tab, err := db.CreateTable("accounts")
	if err != nil {
		log.Fatal(err)
	}

	loader := db.NewSession()
	err = loader.RunTxn(3, func(tx *vats.Txn) error {
		for i := uint64(1); i <= accounts; i++ {
			var b vats.RowBuilder
			if err := tx.Insert(tab, i, b.Int64(initialFunds).Bytes()); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	var mu sync.Mutex
	var latencies []float64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		seed := uint64(w + 1)
		go func() {
			defer wg.Done()
			sess := db.NewSession()
			x := seed * 2654435761
			for i := 0; i < perWorker; i++ {
				x ^= x << 13
				x ^= x >> 7
				x ^= x << 17
				// Zipf-ish: most transfers involve a hot account.
				from := x%hotAccounts + 1
				to := (x>>16)%accounts + 1
				if from == to {
					to = to%accounts + 1
				}
				amount := int64(x % 20)
				start := nowMs()
				err := sess.RunTxn(20, func(tx *vats.Txn) error {
					a, b := from, to
					if a > b {
						a, b = b, a // lock in key order
					}
					ra, err := tx.GetForUpdate(tab, a)
					if err != nil {
						return err
					}
					rb, err := tx.GetForUpdate(tab, b)
					if err != nil {
						return err
					}
					va := vats.NewRowReader(ra).Int64()
					vb := vats.NewRowReader(rb).Int64()
					if a == from {
						va, vb = va-amount, vb+amount
					} else {
						va, vb = va+amount, vb-amount
					}
					var ba, bb vats.RowBuilder
					if err := tx.Update(tab, a, ba.Int64(va).Bytes()); err != nil {
						return err
					}
					return tx.Update(tab, b, bb.Int64(vb).Bytes())
				})
				if err != nil {
					log.Printf("transfer failed: %v", err)
					continue
				}
				lat := nowMs() - start
				mu.Lock()
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	// Verify conservation.
	var total int64
	check := db.NewSession()
	err = check.RunTxn(3, func(tx *vats.Txn) error {
		total = 0
		for i := uint64(1); i <= accounts; i++ {
			img, err := tx.Get(tab, i)
			if err != nil {
				return err
			}
			total += vats.NewRowReader(img).Int64()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	if total != accounts*initialFunds {
		log.Fatalf("money not conserved: %d", total)
	}
	return vats.Summarize(latencies), total
}

func nowMs() float64 {
	return float64(time.Now().UnixNano()) / 1e6
}
