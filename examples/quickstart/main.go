// Quickstart: open an engine, create a table, write and read rows
// transactionally, and survive a crash.
package main

import (
	"errors"
	"fmt"
	"log"

	"vats"
)

func main() {
	// A VATS-scheduled engine with eager (fully durable) logging.
	db, err := vats.Open(vats.Options{Scheduler: vats.VATS, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}

	users, err := db.CreateTable("users")
	if err != nil {
		log.Fatal(err)
	}

	// Sessions are connections: one per goroutine.
	sess := db.NewSession()

	// Insert two rows in one transaction.
	err = sess.RunTxn(3, func(tx *vats.Txn) error {
		var alice, bob vats.RowBuilder
		if err := tx.Insert(users, 1, alice.String("alice").Int64(30).Bytes()); err != nil {
			return err
		}
		return tx.Insert(users, 2, bob.String("bob").Int64(25).Bytes())
	})
	if err != nil {
		log.Fatal(err)
	}

	// Read them back.
	err = sess.RunTxn(3, func(tx *vats.Txn) error {
		for key := uint64(1); key <= 2; key++ {
			img, err := tx.Get(users, key)
			if err != nil {
				return err
			}
			r := vats.NewRowReader(img)
			fmt.Printf("user %d: name=%s age=%d\n", key, r.String(), r.Int64())
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// A rollback leaves no trace.
	tx := sess.Begin()
	var ghost vats.RowBuilder
	if err := tx.Insert(users, 3, ghost.String("ghost").Int64(0).Bytes()); err != nil {
		log.Fatal(err)
	}
	tx.Rollback()
	err = sess.RunTxn(3, func(tx *vats.Txn) error {
		_, err := tx.Get(users, 3)
		return err
	})
	if !errors.Is(err, vats.ErrKeyNotFound) {
		log.Fatalf("rolled-back row visible: %v", err)
	}
	fmt.Println("rollback left no trace")

	// Crash and recover: committed rows survive.
	db.Crash()
	entries := db.Log().RecoveredEntries()

	db2, err := vats.Open(vats.Options{Seed: 43})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	users2, _ := db2.CreateTable("users")
	if err := db2.Recover(entries); err != nil {
		log.Fatal(err)
	}
	sess2 := db2.NewSession()
	err = sess2.RunTxn(3, func(tx *vats.Txn) error {
		img, err := tx.Get(users2, 1)
		if err != nil {
			return err
		}
		fmt.Printf("after crash recovery: user 1 = %s\n", vats.NewRowReader(img).String())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
}
