// Tuning: the paper's §6.3 variance-aware tuning, live. The same
// workload runs under different values of one knob at a time — log
// flush policy, buffer pool size, parallel logging — and the program
// prints how each setting moves mean, variance and p99.
package main

import (
	"fmt"
	"log"

	"vats"
)

func run(opts vats.Options, label string) vats.Summary {
	db, err := vats.Open(opts)
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	wl, err := vats.NewWorkload("tpcc")
	if err != nil {
		log.Fatal(err)
	}
	res, err := vats.RunBenchmark(db, wl, vats.BenchConfig{
		Clients: 16,
		Rate:    400,
		Count:   600,
		Warmup:  60,
		Seed:    3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %-28s mean=%7.3fms var=%9.3f p99=%8.3fms\n",
		label, res.Overall.Mean, res.Overall.Variance, res.Overall.P99)
	return res.Overall
}

func main() {
	fmt.Println("log flush policy (innodb_flush_log_at_trx_commit):")
	eager := run(vats.Options{Flush: vats.EagerFlush, Seed: 1}, "eager flush (durable)")
	lazyW := run(vats.Options{Flush: vats.LazyWrite, Seed: 1}, "lazy write (crash window)")
	fmt.Printf("  → lazy write cuts variance %.1fx (paper fig. 3 right)\n\n",
		eager.Variance/lazyW.Variance)

	fmt.Println("parallel logging (§6.2):")
	single := run(vats.Options{Seed: 2}, "single log stream")
	dual := run(vats.Options{ParallelLog: true, Seed: 2}, "two log streams")
	fmt.Printf("  → parallel logging cuts variance %.1fx (paper fig. 4 left)\n\n",
		single.Variance/dual.Variance)

	fmt.Println("lock scheduling (§5):")
	fcfs := run(vats.Options{Scheduler: vats.FCFS, Seed: 3}, "FCFS (MySQL default)")
	vatsRes := run(vats.Options{Scheduler: vats.VATS, Seed: 3}, "VATS (MySQL ≥ 5.7.17)")
	fmt.Printf("  → at this (uncontended) load the choice is immaterial: %.2fx\n",
		fcfs.Variance/vatsRes.Variance)
	fmt.Println("    (crank clients/rate to see VATS pull ahead — see cmd/repro -exp fig2)")
}
