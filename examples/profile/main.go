// Profile: point TProfiler at a workload and find where latency
// variance comes from — the paper's §3/§4 workflow, including the
// iterative-refinement step that restricts instrumentation to the
// interesting subtree.
package main

import (
	"fmt"
	"log"

	"vats"
)

func main() {
	prof := vats.NewProfiler()
	db, err := vats.Open(vats.Options{Profiler: prof, Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	wl, err := vats.NewWorkload("tpcc")
	if err != nil {
		log.Fatal(err)
	}
	res, err := vats.RunBenchmark(db, wl, vats.BenchConfig{
		Clients: 16,
		Rate:    400,
		Count:   600,
		Warmup:  60,
		Seed:    5,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("run 1 (everything instrumented): %s\n\n", res.Overall.String())
	fmt.Println("variance tree:")
	fmt.Println(prof.Report())

	fmt.Println("top 5 factors (specificity-weighted):")
	top := prof.TopFactors(5)
	for _, f := range top {
		fmt.Printf("  %s\n", f.String())
	}

	// Iterative refinement: re-profile with instrumentation restricted
	// to the top culprits, as §3.1 describes — the cheap second pass a
	// developer runs to confirm a finding without full overhead.
	if len(top) == 0 {
		return
	}
	var names []string
	for _, f := range top {
		names = append(names, f.Functions...)
	}
	prof2 := vats.NewProfiler()
	prof2.Instrument(names...)
	db2, err := vats.Open(vats.Options{Profiler: prof2, Seed: 6})
	if err != nil {
		log.Fatal(err)
	}
	defer db2.Close()
	wl2, _ := vats.NewWorkload("tpcc")
	if _, err := vats.RunBenchmark(db2, wl2, vats.BenchConfig{
		Clients: 16, Rate: 400, Count: 600, Warmup: 60, Seed: 6,
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrun 2 (only %d functions instrumented):\n", len(names))
	for _, f := range prof2.TopFactors(5) {
		fmt.Printf("  %s\n", f.String())
	}
}
