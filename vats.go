// Package vats is a from-scratch Go reproduction of "A Top-Down
// Approach to Achieving Performance Predictability in Database Systems"
// (Huang, Mozafari, Schoenebeck, Wenisch — SIGMOD 2017), the paper whose
// VATS lock scheduler shipped in MySQL 5.7.17 and became MariaDB's
// default.
//
// The package exposes a complete transactional storage engine — record
// 2PL with pluggable lock scheduling (FCFS / VATS / RS), an InnoDB-style
// young/old buffer pool with the paper's Lazy LRU Update policy, a redo
// WAL with group commit, three durability policies and parallel logging
// — plus the TProfiler variance profiler, the five OLTP benchmarks of
// the paper's evaluation, and an experiment harness that regenerates
// every table and figure.
//
// Quick start:
//
//	db, err := vats.Open(vats.Options{Scheduler: vats.VATS})
//	if err != nil { ... }
//	defer db.Close()
//	accounts, _ := db.CreateTable("accounts")
//	sess := db.NewSession()
//	err = sess.RunTxn(3, func(tx *vats.Txn) error {
//		var row vats.RowBuilder
//		return tx.Insert(accounts, 1, row.Int64(100).Bytes())
//	})
//
// The experiment harness is exposed through Experiments / RunExperiment;
// see cmd/repro for the tool that regenerates the paper's results.
package vats

import (
	"fmt"
	"time"

	"vats/internal/admit"
	"vats/internal/buffer"
	"vats/internal/disk"
	"vats/internal/engine"
	"vats/internal/exec"
	"vats/internal/harness"
	"vats/internal/lock"
	"vats/internal/netload"
	"vats/internal/obs"
	"vats/internal/partition"
	"vats/internal/server"
	"vats/internal/stats"
	"vats/internal/storage"
	"vats/internal/tprofiler"
	"vats/internal/wal"
	"vats/internal/workload"
)

// Core engine types. These are aliases so the full engine API —
// documented in the respective internal packages — is available on the
// public surface.
type (
	// DB is a database engine instance.
	DB = engine.DB
	// Session is a worker-local connection; create one per goroutine.
	Session = engine.Session
	// Txn is a strict-2PL transaction.
	Txn = engine.Txn
	// SnapshotTxn is a lock-free read-only transaction over a frozen
	// commit timestamp: its reads never block writers or retry.
	SnapshotTxn = engine.SnapshotTxn
	// Table is a heap table with a clustered B+-tree primary index.
	Table = storage.Table
	// RowBuilder encodes typed fields into a row image.
	RowBuilder = storage.RowBuilder
	// RowReader decodes a row image.
	RowReader = storage.RowReader
	// Summary is a latency summary (mean/variance/p99...).
	Summary = stats.Summary
	// Profiler is the TProfiler variance profiler.
	Profiler = tprofiler.Profiler
	// Workload is an OLTP benchmark (loader + client factory).
	Workload = workload.Workload
	// BenchResult is a measurement run's result.
	BenchResult = harness.Result
	// Experiment is a regenerated paper table/figure.
	Experiment = harness.Experiment
	// AgeSample is one (age, remaining-time) lock-wait observation.
	AgeSample = engine.AgeSample
	// Obs is a live observability bundle: a sharded metrics registry,
	// the slow-transaction tracer, the online variance-attribution
	// engine with its SLO watchdog, and the overhead-budgeted sampling
	// controller (see internal/obs).
	Obs = obs.Obs
	// ObsConfig sizes an observability bundle (NewObservabilityWith).
	ObsConfig = obs.Config
	// ObsServer is a running /metrics + /debug HTTP endpoint.
	ObsServer = obs.Server
	// VarianceSnapshot is a merged live variance-attribution view (the
	// /debug/variance payload core).
	VarianceSnapshot = obs.VarianceSnapshot
	// VarianceConfig sizes the online attribution engine's windows.
	VarianceConfig = obs.VarianceConfig
	// SLOConfig holds the variance watchdog's targets.
	SLOConfig = obs.SLOConfig
	// Anomaly is one SLO-watchdog annotation (the /debug/anomalies
	// payload element).
	Anomaly = obs.Anomaly
	// SamplingConfig sets the span-capture overhead budget.
	SamplingConfig = obs.SamplingConfig
)

// Streaming scan executor (internal/exec): single-use pull-based
// operator pipelines over MVCC snapshots. Sources bind to a
// SnapshotTxn, so a whole pipeline never takes a lock.
type (
	// Row is one row flowing through an executor pipeline; Data is
	// valid only until the next Next call.
	Row = exec.Row
	// Iterator is a single-use executor row stream.
	Iterator = exec.Iterator
	// Planner memoizes compiled scan plans in an LRU keyed by
	// (table, index, predicate shape).
	Planner = exec.Planner
	// ScanSpec describes a scan for the planner.
	ScanSpec = exec.Spec
	// PredShape identifies a predicate's structure for plan caching.
	PredShape = exec.PredShape
)

// NewTableScan streams a table's rows in key order at tx's snapshot,
// with [lo, hi] pushed into the B+-tree descent.
func NewTableScan(tx *SnapshotTxn, t *Table, lo, hi uint64) Iterator {
	return exec.NewTableScan(tx, t, lo, hi)
}

// NewIndexScan streams rows in secondary-key order at tx's snapshot.
func NewIndexScan(tx *SnapshotTxn, t *Table, index string, lo, hi uint64) Iterator {
	return exec.NewIndexScan(tx, t, index, lo, hi)
}

// Filter drops rows failing pred.
func Filter(in Iterator, pred func(Row) bool) Iterator { return exec.Filter(in, pred) }

// Project rewrites each row image through proj (dst is a reused
// scratch buffer to append into).
func Project(in Iterator, proj func(dst []byte, r Row) []byte) Iterator {
	return exec.Project(in, proj)
}

// Limit stops after n rows; upstream operators do no further work.
func Limit(in Iterator, n int) Iterator { return exec.Limit(in, n) }

// Merge combines key-ordered iterators into one key-ordered stream.
func Merge(ins ...Iterator) Iterator { return exec.Merge(ins...) }

// NewPlanner builds a scan planner with the given plan-cache capacity
// (0 = default).
func NewPlanner(capacity int) *Planner { return exec.NewPlanner(capacity) }

// NewRowReader wraps a row image for decoding.
func NewRowReader(row []byte) *RowReader { return storage.NewRowReader(row) }

// Summarize condenses raw latency observations (in ms) into a Summary.
func Summarize(latencies []float64) Summary { return stats.Summarize(latencies) }

// NewProfiler returns an empty TProfiler instance; pass it in Options to
// collect a variance tree while the engine runs.
func NewProfiler() *Profiler { return tprofiler.New() }

// Observability returns the process-wide observability bundle that
// engines fall back to when Options.Obs is nil. It is disabled (near-
// zero cost) until enabled via SetEnabled or ServeObservability.
func Observability() *Obs { return obs.Default }

// NewObservability returns a fresh, enabled observability bundle to
// pass in Options.Obs when one engine should be observed in isolation
// from the global default. Serve the bundle with its Serve method.
func NewObservability() *Obs { return obs.New() }

// NewObservabilityWith returns a fresh bundle with explicit sizing —
// variance windows, SLO targets, sampling budget, slow-ring bounds.
func NewObservabilityWith(cfg ObsConfig) *Obs { return obs.NewWith(cfg) }

// ServeObservability starts the /metrics + /debug/txns + /debug/stats
// HTTP endpoint on addr (e.g. ":9090", or "127.0.0.1:0" for an
// ephemeral port) serving the global observability bundle, enabling
// collection as a side effect. Close the returned server to stop it.
func ServeObservability(addr string) (*ObsServer, error) {
	return obs.Serve(addr, obs.Default)
}

// SchedulerPolicy selects the lock scheduler (§5 of the paper).
type SchedulerPolicy int

const (
	// FCFS is first-come-first-served — the MySQL/Postgres default and
	// the paper's baseline.
	FCFS SchedulerPolicy = iota
	// VATS is the paper's Variance-Aware Transaction Scheduling:
	// eldest-transaction-first, Lp-optimal under i.i.d. remaining times.
	VATS
	// RS is randomized scheduling (the paper's control).
	RS
)

// String names the policy.
func (p SchedulerPolicy) String() string {
	switch p {
	case VATS:
		return "VATS"
	case RS:
		return "RS"
	default:
		return "FCFS"
	}
}

func (p SchedulerPolicy) scheduler() lock.Scheduler {
	switch p {
	case VATS:
		return lock.VATS{}
	case RS:
		return lock.RS{}
	default:
		return lock.FCFS{}
	}
}

// FlushPolicy selects redo-log durability (the paper's Appendix B /
// innodb_flush_log_at_trx_commit).
type FlushPolicy int

const (
	// EagerFlush fsyncs on the commit path (fully durable).
	EagerFlush FlushPolicy = iota
	// LazyFlush writes on commit, fsyncs in the background.
	LazyFlush
	// LazyWrite defers both write and fsync to the background.
	LazyWrite
)

func (p FlushPolicy) wal() wal.FlushPolicy {
	switch p {
	case LazyFlush:
		return wal.LazyFlush
	case LazyWrite:
		return wal.LazyWrite
	default:
		return wal.EagerFlush
	}
}

// Isolation selects what Txn.Scan/IndexScan read (point reads are
// always record-locked; snapshot reads via Session.BeginSnapshot are
// always timestamp-frozen regardless of this knob).
type Isolation int

const (
	// ReadCommitted streams the newest state with no frozen timestamp
	// (the historical scan behavior, and the default).
	ReadCommitted Isolation = iota
	// SnapshotScans freezes each transaction's scans at the timestamp
	// of its first scan; scans then miss the transaction's own
	// uncommitted writes.
	SnapshotScans
)

func (i Isolation) engine() engine.IsolationLevel {
	if i == SnapshotScans {
		return engine.SnapshotScans
	}
	return engine.ReadCommitted
}

// LRUPolicy selects the buffer pool's promotion synchronization (§6.1).
type LRUPolicy int

const (
	// EagerLRU blocks on the pool mutex (original MySQL).
	EagerLRU LRUPolicy = iota
	// LazyLRU is the paper's Lazy LRU Update: bounded spin + backlog.
	LazyLRU
)

func (p LRUPolicy) buffer() buffer.UpdatePolicy {
	if p == LazyLRU {
		return buffer.LazyLRU
	}
	return buffer.EagerLRU
}

// Options configures Open. The zero value is a usable small engine.
type Options struct {
	// Scheduler is the lock scheduling policy (default FCFS).
	Scheduler SchedulerPolicy
	// Flush is the redo durability policy (default EagerFlush).
	Flush FlushPolicy
	// LRU is the buffer-pool promotion policy (default EagerLRU).
	LRU LRUPolicy
	// BufferPages is the buffer pool capacity in pages (default 1024).
	BufferPages int
	// BufferShards splits the pool into that many instances (MySQL's
	// innodb_buffer_pool_instances); 0 keeps a single instance.
	BufferShards int
	// PageSize in bytes (default 4096).
	PageSize int
	// LockTimeout bounds lock waits (default 2s).
	LockTimeout time.Duration
	// ParallelLog enables two-stream parallel logging (§6.2).
	ParallelLog bool
	// Profiler, when non-nil, receives TProfiler spans.
	Profiler *Profiler
	// SampleAgeRemaining collects (age, remaining-time) pairs at lock
	// waits (Figure 8 data), retrievable via DB.AgeSamples.
	SampleAgeRemaining bool
	// Obs, when non-nil, is a dedicated observability bundle for this
	// engine; nil uses the global Observability() default.
	Obs *Obs
	// ScanIsolation selects the isolation Txn.Scan/IndexScan run at
	// (default ReadCommitted; see Isolation).
	ScanIsolation Isolation
	// MVCCGCInterval is the version-store GC period (0 = the engine
	// default of 25ms; negative disables the background pass).
	MVCCGCInterval time.Duration
	// Partitions, when > 1, is the partition count for OpenPartitioned;
	// Open ignores it (a plain engine is always one partition).
	Partitions int
	// PartitionWorkers is the executor-goroutine count per partition
	// for OpenPartitioned (0 = GOMAXPROCS/Partitions, floor 1).
	PartitionWorkers int
	// Seed makes the simulated devices deterministic.
	Seed int64
}

// engineConfig maps Options onto one engine instance's configuration,
// creating the instance's simulated devices from o.Seed.
func (o Options) engineConfig() engine.Config {
	if o.BufferPages == 0 {
		o.BufferPages = 1024
	}
	if o.PageSize == 0 {
		o.PageSize = 4096
	}
	logDevices := []disk.Device{disk.New(disk.DefaultConfig("log0", o.Seed+2))}
	if o.ParallelLog {
		logDevices = append(logDevices, disk.New(disk.DefaultConfig("log1", o.Seed+3)))
	}
	dataCfg := disk.DefaultConfig("data", o.Seed+1)
	dataCfg.MedianLatency = 120 * time.Microsecond
	return engine.Config{
		Scheduler:          o.Scheduler.scheduler(),
		LockTimeout:        o.LockTimeout,
		BufferCapacity:     o.BufferPages,
		BufferShards:       o.BufferShards,
		PageSize:           o.PageSize,
		LRUPolicy:          o.LRU.buffer(),
		DataDevice:         disk.New(dataCfg),
		LogDevices:         logDevices,
		ParallelLog:        o.ParallelLog,
		FlushPolicy:        o.Flush.wal(),
		Profiler:           o.Profiler,
		SampleAgeRemaining: o.SampleAgeRemaining,
		Obs:                o.Obs,
		ScanIsolation:      o.ScanIsolation.engine(),
		MVCCGCInterval:     o.MVCCGCInterval,
		Seed:               o.Seed,
	}
}

// Open starts an engine with simulated storage devices.
func Open(o Options) (*DB, error) {
	return engine.Open(o.engineConfig()), nil
}

// Horizontally partitioned engine (internal/partition): N independent
// engine instances hash-partitioned by a declared partition key, a
// router that classifies each transaction's declared key set up front,
// per-partition executor queues for single-partition transactions, and
// two-phase commit over per-stream durable watermarks for
// multi-partition ones.
type (
	// PartitionedDB is a running N-way partitioned engine.
	PartitionedDB = partition.DB
	// PartitionedTxn is a routed transaction spanning one or more
	// partitions (passed to the function given to PartitionedDB.Run).
	PartitionedTxn = partition.Txn
	// PartitionRef declares one (table, primary key) a transaction will
	// touch — the router classifies transactions from these.
	PartitionRef = partition.Ref
	// PartitionedTable is a hash-partitioned (or replicated) table.
	PartitionedTable = partition.Table
	// PartitionStats is a routing/throughput snapshot.
	PartitionStats = partition.Stats
	// PartitionedWorkload is a benchmark that can drive a partitioned
	// engine.
	PartitionedWorkload = workload.PartitionedWorkload
)

// OpenPartitioned starts an o.Partitions-way partitioned engine. Each
// partition is an independent engine with its own simulated devices
// (seeded distinctly from o.Seed) and WAL stream(s); o's remaining
// fields configure every partition identically.
func OpenPartitioned(o Options) (*PartitionedDB, error) {
	n := o.Partitions
	if n <= 0 {
		n = 1
	}
	base := o
	return partition.Open(partition.Options{
		Partitions: n,
		Workers:    o.PartitionWorkers,
		Base:       base.engineConfig(),
		EngineFor: func(p int, _ engine.Config) engine.Config {
			po := base
			po.Seed = base.Seed + int64(p)*101
			return po.engineConfig()
		},
	})
}

// NewPartitionedTPCC builds the partition-aware TPC-C workload:
// hash-partitioned by warehouse with the item table replicated.
// crossPaymentP and crossOrderP set the remote-customer Payment and
// remote-supply NewOrder fractions — the multi-partition transaction
// ratio knobs.
func NewPartitionedTPCC(warehouses int, crossPaymentP, crossOrderP float64) PartitionedWorkload {
	return workload.NewPartitionedTPCC(workload.TPCCConfig{Warehouses: warehouses}, crossPaymentP, crossOrderP)
}

// RunPartitionedBenchmark loads wl into pdb and drives it with the same
// driver and measurement semantics as RunBenchmark.
func RunPartitionedBenchmark(pdb *PartitionedDB, wl PartitionedWorkload, cfg BenchConfig) (BenchResult, error) {
	if err := wl.LoadPartitioned(pdb); err != nil {
		return BenchResult{}, fmt.Errorf("vats: load %s: %w", wl.Name(), err)
	}
	return harness.RunPartitioned(pdb, wl, harness.RunConfig{
		Clients: cfg.Clients,
		Rate:    cfg.Rate,
		Count:   cfg.Count,
		Warmup:  cfg.Warmup,
		Seed:    cfg.Seed,
	})
}

// Network service layer (internal/server + internal/admit +
// internal/netload): the vatsd wire protocol server that maps
// connections onto Session/SnapshotTxn, the admission controller with
// per-class load shedding and a p99 queue-wait feedback target, and the
// open-loop load generator. See cmd/vatsd and cmd/vatsload for the
// command-line front ends and docs/SERVER.md for the protocol.
type (
	// Server serves the wire protocol over TCP or unix sockets.
	Server = server.Server
	// ServerConfig configures a Server (admission knobs included).
	ServerConfig = server.Config
	// ServerClient is a synchronous wire-protocol client.
	ServerClient = server.Client
	// AdmitConfig configures the admission controller.
	AdmitConfig = admit.Config
	// AdmitClass is an admission priority class.
	AdmitClass = admit.Class
	// AdmitStats is an admission-controller snapshot.
	AdmitStats = admit.Stats
	// LoadConfig drives one open-loop load-generator run.
	LoadConfig = netload.Config
	// LoadResult is a load run's outcome.
	LoadResult = netload.Result
)

// Admission classes, highest priority first.
const (
	ClassHigh   = admit.High
	ClassNormal = admit.Normal
	ClassLow    = admit.Low
)

// ErrShed: the request was load-shed by admission control; back off.
var ErrShed = admit.ErrShed

// NewServer builds a wire-protocol server over an open engine; call
// Listen to bind and Close to shut down.
func NewServer(db *DB, cfg ServerConfig) *Server { return server.New(db, cfg) }

// DialServer connects a synchronous client to a running server.
func DialServer(network, addr string) (*ServerClient, error) { return server.Dial(network, addr) }

// RunLoad executes one open-loop load run against a running server.
func RunLoad(cfg LoadConfig) (*LoadResult, error) { return netload.Run(cfg) }

// Row-operation errors, re-exported for errors.Is checks.
var (
	// ErrKeyNotFound: the primary key does not exist.
	ErrKeyNotFound = storage.ErrKeyNotFound
	// ErrDuplicateKey: an Insert hit an existing key.
	ErrDuplicateKey = storage.ErrDuplicateKey
	// ErrDeadlock: the transaction was a deadlock victim; retry.
	ErrDeadlock = lock.ErrDeadlock
	// ErrLockTimeout: a lock wait timed out; retry.
	ErrLockTimeout = lock.ErrTimeout
)

// IsRetryable reports whether err is a transient concurrency failure
// worth retrying in a fresh transaction.
func IsRetryable(err error) bool { return engine.IsRetryable(err) }

// NewWorkload builds one of the paper's five benchmarks by name:
// "tpcc", "seats", "tatp", "epinions" or "ycsb".
func NewWorkload(name string) (Workload, error) { return workload.ByName(name) }

// BenchConfig configures RunBenchmark.
type BenchConfig struct {
	// Clients is the number of concurrent terminals (default 8).
	Clients int
	// Rate is the offered load in txn/s; <= 0 runs closed-loop.
	Rate float64
	// Count is the number of transactions to measure (default 500).
	Count int
	// Warmup transactions are excluded from statistics.
	Warmup int
	// Seed seeds the clients.
	Seed int64
}

// RunBenchmark loads wl into db and drives it, returning latency
// statistics. This is the OLTP-Bench-style driver of §7.1.
func RunBenchmark(db *DB, wl Workload, cfg BenchConfig) (BenchResult, error) {
	if err := wl.Load(db); err != nil {
		return BenchResult{}, fmt.Errorf("vats: load %s: %w", wl.Name(), err)
	}
	return harness.Run(db, wl, harness.RunConfig{
		Clients: cfg.Clients,
		Rate:    cfg.Rate,
		Count:   cfg.Count,
		Warmup:  cfg.Warmup,
		Seed:    cfg.Seed,
	})
}

// ExperimentIDs lists the reproducible paper artifacts (table1..table4,
// fig2..fig8, appC1, thm1) in presentation order.
func ExperimentIDs() []string { return harness.IDs() }

// ExperimentOpts scales an experiment; the zero value uses each
// experiment's full-size defaults.
type ExperimentOpts struct {
	// Count is transactions per measurement run (0 = default).
	Count int
	// Clients is the worker count (0 = default).
	Clients int
	// Rate is the offered load; 0 = default, negative = closed loop.
	Rate float64
	// Seed controls all randomness.
	Seed int64
}

// RunExperiment regenerates one table or figure by id.
func RunExperiment(id string, o ExperimentOpts) (Experiment, error) {
	r, ok := harness.All()[id]
	if !ok {
		return Experiment{}, fmt.Errorf("vats: unknown experiment %q (want one of %v)", id, harness.IDs())
	}
	return r(harness.Opts{Count: o.Count, Clients: o.Clients, Rate: o.Rate, Seed: o.Seed})
}
