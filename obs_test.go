package vats_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strings"
	"testing"
	"time"

	"vats"
)

// TestObservabilityEndToEnd drives a small TPC-C run with live
// observability enabled and checks the HTTP surface: /metrics must show
// non-zero lock-wait, buffer hit/miss, and WAL-flush series, and
// /debug/txns must return retained slow-transaction traces that replay
// into a ranked variance-factor list.
func TestObservabilityEndToEnd(t *testing.T) {
	ob := vats.NewObservability()
	srv, err := ob.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The small pool forces eviction/miss traffic so the buffer-pool
	// series are exercised, not just registered.
	db, err := vats.Open(vats.Options{Scheduler: vats.VATS, Obs: ob, BufferPages: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	wl, err := vats.NewWorkload("tpcc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vats.RunBenchmark(db, wl, vats.BenchConfig{
		Clients: 8, Count: 300, Warmup: 30, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}

	metrics := httpGet(t, srv.URL()+"/metrics")
	for _, series := range []string{
		"lock_wait_ms_count", "buf_hits_total", "buf_misses_total",
		"wal_flush_ms_count", "txn_commits_total", "txn_latency_ms_count",
	} {
		if !hasNonZeroSeries(metrics, series) {
			t.Errorf("/metrics has no non-zero %s series:\n%s", series, grepLines(metrics, series))
		}
	}

	var txns struct {
		Count  int `json:"count"`
		Traces []struct {
			ID        uint64             `json:"id"`
			LatencyMs float64            `json:"latency_ms"`
			Spans     map[string]float64 `json:"spans_ms"`
		} `json:"traces"`
		Factors []struct {
			Functions []string `json:"functions"`
			Score     float64  `json:"score"`
		} `json:"factors"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL()+"/debug/txns?factors=10")), &txns); err != nil {
		t.Fatal(err)
	}
	if txns.Count < 1 {
		t.Fatal("/debug/txns retained no traces during a 300-txn run")
	}
	if txns.Traces[0].LatencyMs <= 0 {
		t.Fatalf("retained trace has non-positive latency: %+v", txns.Traces[0])
	}
	if len(txns.Factors) == 0 {
		t.Fatal("?factors= replay produced no ranked variance factors")
	}

	var sums map[string]struct {
		N    int     `json:"N"`
		Mean float64 `json:"Mean"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL()+"/debug/stats")), &sums); err != nil {
		t.Fatal(err)
	}
	if len(sums) == 0 {
		t.Fatal("/debug/stats returned no histogram summaries")
	}
}

// TestVarianceAttributionEndToEnd is the PR's acceptance check: drive a
// seeded run with live variance attribution on, mirror the identical
// committed-transaction stream into an offline TProfiler via the tracer
// sink, and require /debug/variance's top-3 contributors and shares to
// match the offline replay within 5%. Also exercises /healthz,
// /debug/anomalies, and the new /metrics series.
func TestVarianceAttributionEndToEnd(t *testing.T) {
	// Hour-long window so nothing rotates out mid-test and negative
	// sampling budget so every transaction is captured — the online and
	// offline sides then see byte-identical streams.
	ob := vats.NewObservabilityWith(vats.ObsConfig{
		Variance: vats.VarianceConfig{Window: time.Hour},
		Sampling: vats.SamplingConfig{Budget: -1},
	})
	offline := vats.NewProfiler()
	ob.Tracer.SetSink(offline.AddTrace)
	srv, err := ob.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	db, err := vats.Open(vats.Options{Scheduler: vats.VATS, Obs: ob, BufferPages: 8, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	wl, err := vats.NewWorkload("tpcc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vats.RunBenchmark(db, wl, vats.BenchConfig{
		Clients: 8, Count: 400, Warmup: 40, Seed: 11,
	}); err != nil {
		t.Fatal(err)
	}

	var vr struct {
		Txns     int64   `json:"txns"`
		Variance float64 `json:"variance_ms2"`
		P99      float64 `json:"p99_ms"`
		Factors  []struct {
			Name  string  `json:"name"`
			Share float64 `json:"share"`
		} `json:"factors"`
		Sampler struct {
			Modulus int64 `json:"modulus"`
		} `json:"sampler"`
		Ranked []struct {
			Functions   []string `json:"functions"`
			FracOfTotal float64  `json:"frac_of_total"`
		} `json:"ranked_factors"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL()+"/debug/variance?factors=3")), &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Txns == 0 || vr.Variance <= 0 {
		t.Fatalf("variance snapshot empty: txns=%d variance=%g", vr.Txns, vr.Variance)
	}
	if vr.Sampler.Modulus != 1 {
		t.Fatalf("unlimited budget must trace everything, modulus=%d", vr.Sampler.Modulus)
	}

	// The offline profiler saw the same stream through the sink; total
	// counts must be identical and the top-3 decomposition must agree.
	if got, want := offline.TxnCount(), vr.Txns; got != want {
		t.Fatalf("offline replay saw %d txns, online %d", got, want)
	}
	off := offline.TopFactors(3)
	if len(vr.Ranked) == 0 || len(off) == 0 {
		t.Fatalf("no ranked factors: online %d offline %d", len(vr.Ranked), len(off))
	}
	if len(vr.Ranked) != len(off) {
		t.Fatalf("top-3 lengths differ: online %d offline %d", len(vr.Ranked), len(off))
	}
	for i := range off {
		onName := strings.Join(vr.Ranked[i].Functions, "+")
		offName := strings.Join(off[i].Functions, "+")
		if onName != offName {
			t.Errorf("rank %d contributor: online %q offline %q", i, onName, offName)
			continue
		}
		if d := math.Abs(vr.Ranked[i].FracOfTotal - off[i].FracOfTotal); d > 0.05 {
			t.Errorf("rank %d (%s) share: online %.4f offline %.4f (Δ %.4f > 5%%)",
				i, onName, vr.Ranked[i].FracOfTotal, off[i].FracOfTotal, d)
		}
	}

	// Liveness probe and anomaly endpoint respond.
	if body := httpGet(t, srv.URL()+"/healthz"); !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %q, want ok", body)
	}
	var ar struct {
		Total     int64          `json:"total"`
		Anomalies []vats.Anomaly `json:"anomalies"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL()+"/debug/anomalies?n=5")), &ar); err != nil {
		t.Fatal(err)
	}
	if len(ar.Anomalies) > 5 {
		t.Fatalf("?n=5 returned %d anomalies", len(ar.Anomalies))
	}

	// New exposition series: per-factor shares, window quantile gauges,
	// and the sampling controller state.
	metrics := httpGet(t, srv.URL()+"/metrics")
	for _, series := range []string{
		"txn_variance_share", "txn_window_variance_ms2", "txn_window_p99_ms",
		"txn_latency_ms_p99", "txn_trace_sampling_modulus",
	} {
		if !hasNonZeroSeries(metrics, series) {
			t.Errorf("/metrics has no non-zero %s series:\n%s", series, grepLines(metrics, series))
		}
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// hasNonZeroSeries reports whether any exposition line for the series
// carries a value other than 0.
func hasNonZeroSeries(metrics, series string) bool {
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, series) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" && fields[1] != "0.0" {
			return true
		}
	}
	return false
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	if len(out) == 0 {
		return fmt.Sprintf("(no lines containing %q)", substr)
	}
	return strings.Join(out, "\n")
}
