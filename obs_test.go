package vats_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"vats"
)

// TestObservabilityEndToEnd drives a small TPC-C run with live
// observability enabled and checks the HTTP surface: /metrics must show
// non-zero lock-wait, buffer hit/miss, and WAL-flush series, and
// /debug/txns must return retained slow-transaction traces that replay
// into a ranked variance-factor list.
func TestObservabilityEndToEnd(t *testing.T) {
	ob := vats.NewObservability()
	srv, err := ob.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The small pool forces eviction/miss traffic so the buffer-pool
	// series are exercised, not just registered.
	db, err := vats.Open(vats.Options{Scheduler: vats.VATS, Obs: ob, BufferPages: 8, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	wl, err := vats.NewWorkload("tpcc")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := vats.RunBenchmark(db, wl, vats.BenchConfig{
		Clients: 8, Count: 300, Warmup: 30, Seed: 3,
	}); err != nil {
		t.Fatal(err)
	}

	metrics := httpGet(t, srv.URL()+"/metrics")
	for _, series := range []string{
		"lock_wait_ms_count", "buf_hits_total", "buf_misses_total",
		"wal_flush_ms_count", "txn_commits_total", "txn_latency_ms_count",
	} {
		if !hasNonZeroSeries(metrics, series) {
			t.Errorf("/metrics has no non-zero %s series:\n%s", series, grepLines(metrics, series))
		}
	}

	var txns struct {
		Count  int `json:"count"`
		Traces []struct {
			ID        uint64             `json:"id"`
			LatencyMs float64            `json:"latency_ms"`
			Spans     map[string]float64 `json:"spans_ms"`
		} `json:"traces"`
		Factors []struct {
			Functions []string `json:"functions"`
			Score     float64  `json:"score"`
		} `json:"factors"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL()+"/debug/txns?factors=10")), &txns); err != nil {
		t.Fatal(err)
	}
	if txns.Count < 1 {
		t.Fatal("/debug/txns retained no traces during a 300-txn run")
	}
	if txns.Traces[0].LatencyMs <= 0 {
		t.Fatalf("retained trace has non-positive latency: %+v", txns.Traces[0])
	}
	if len(txns.Factors) == 0 {
		t.Fatal("?factors= replay produced no ranked variance factors")
	}

	var sums map[string]struct {
		N    int     `json:"N"`
		Mean float64 `json:"Mean"`
	}
	if err := json.Unmarshal([]byte(httpGet(t, srv.URL()+"/debug/stats")), &sums); err != nil {
		t.Fatal(err)
	}
	if len(sums) == 0 {
		t.Fatal("/debug/stats returned no histogram summaries")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// hasNonZeroSeries reports whether any exposition line for the series
// carries a value other than 0.
func hasNonZeroSeries(metrics, series string) bool {
	for _, line := range strings.Split(metrics, "\n") {
		if !strings.HasPrefix(line, series) {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) == 2 && fields[1] != "0" && fields[1] != "0.0" {
			return true
		}
	}
	return false
}

func grepLines(s, substr string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, substr) {
			out = append(out, line)
		}
	}
	if len(out) == 0 {
		return fmt.Sprintf("(no lines containing %q)", substr)
	}
	return strings.Join(out, "\n")
}
